//! Versioned, checksummed service persistence.
//!
//! A [`ServiceSnapshot`] captures everything a [`GroupingService`] needs
//! to continue a log bit-identically: configuration, fleet, counters and
//! the cached plan. Integrity follows the `ScenarioArchive` playbook:
//!
//! * a **schema version** gating which builds can read the file,
//! * a **fingerprint** over (configuration with `threads` normalized to
//!   0, mix name, class table) — computable from a config and an event
//!   log *without* the snapshot, so a driver can detect a snapshot taken
//!   under a different setup before trusting any of its state,
//! * a **checksum** (the shard FNV-1a digest,
//!   [`nbiot_sim::value_digest`]) over the serialized state.

use nbiot_grouping::set_cover::KernelArena;
use nbiot_sim::{value_digest, PlannedFleet};
use nbiot_time::UeId;
use nbiot_traffic::{DeviceId, DeviceProfile, Population};
use serde::Serialize;

use crate::engine::{GroupingService, PlanState, ServiceConfig};
use crate::ServiceError;

/// Snapshot format version this build writes and reads.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// The cached plan as persisted: the plan, its mechanism, and the
/// `(id, ue)` identity pairs it was computed against.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanRecord {
    /// Canonical mechanism name.
    pub mechanism: String,
    /// The plan itself.
    pub plan: nbiot_grouping::MulticastPlan,
    /// Identity snapshot at plan time, id-ascending.
    pub planned: Vec<(DeviceId, UeId)>,
}

/// The complete persisted state of a service instance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceState {
    /// Service configuration.
    pub config: ServiceConfig,
    /// Traffic-mix name of the fleet.
    pub mix_name: String,
    /// Class-name table of the fleet.
    pub class_names: Vec<String>,
    /// The fleet, row by row (rebuilt via [`Population::new`], which is
    /// bit-identical to the incrementally edited original by the
    /// identity-column canonicalization invariant).
    pub devices: Vec<DeviceProfile>,
    /// Current epoch stamp.
    pub epoch: u32,
    /// Replay cursor: event records consumed so far.
    pub next_record: u64,
    /// Campaign requests served so far.
    pub serves: u64,
    /// Fleet events folded since the cached plan was computed.
    pub events_since_plan: u64,
    /// The cached plan, when one was serving.
    pub plan: Option<PlanRecord>,
}

/// A [`ServiceState`] wrapped with its schema version, setup fingerprint
/// and integrity checksum.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceSnapshot {
    /// Format version ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// [`service_fingerprint`] of the setup that wrote this snapshot.
    pub fingerprint: u64,
    /// FNV-1a digest of the serialized state.
    pub checksum: u64,
    /// The state itself.
    pub state: ServiceState,
}

/// Fingerprint of a service setup: configuration (with `threads`
/// normalized to 0 — thread count never changes results) plus the
/// fleet's mix header. Computable from a [`ServiceConfig`] and an
/// [`EventLog`](crate::EventLog) header alone, so a driver can reject a
/// foreign snapshot before restoring anything from it.
pub fn service_fingerprint(config: &ServiceConfig, mix_name: &str, class_names: &[String]) -> u64 {
    let mut normalized = *config;
    normalized.threads = 0;
    let value = serde::Value::Object(vec![
        ("config".to_string(), normalized.to_value()),
        ("mix_name".to_string(), mix_name.to_value()),
        ("class_names".to_string(), class_names.to_value()),
    ]);
    value_digest(&value)
}

impl ServiceSnapshot {
    /// Wraps a state with its schema version, fingerprint and checksum.
    pub fn seal(state: ServiceState) -> ServiceSnapshot {
        let fingerprint = service_fingerprint(&state.config, &state.mix_name, &state.class_names);
        let checksum = value_digest(&state.to_value());
        ServiceSnapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            fingerprint,
            checksum,
            state,
        }
    }

    /// Checks schema version, checksum and internal fingerprint
    /// consistency.
    ///
    /// # Errors
    ///
    /// [`ServiceError::CorruptSnapshot`] naming the first failed check.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.schema_version != SNAPSHOT_SCHEMA_VERSION {
            return Err(ServiceError::CorruptSnapshot {
                detail: format!(
                    "unsupported snapshot schema version {} (this build reads version {})",
                    self.schema_version, SNAPSHOT_SCHEMA_VERSION
                ),
            });
        }
        let computed = value_digest(&self.state.to_value());
        if computed != self.checksum {
            return Err(ServiceError::CorruptSnapshot {
                detail: format!(
                    "checksum mismatch: stored {:#018x}, computed {computed:#018x}",
                    self.checksum
                ),
            });
        }
        let fingerprint = service_fingerprint(
            &self.state.config,
            &self.state.mix_name,
            &self.state.class_names,
        );
        if fingerprint != self.fingerprint {
            return Err(ServiceError::CorruptSnapshot {
                detail: format!(
                    "fingerprint mismatch: stored {:#018x}, computed {fingerprint:#018x}",
                    self.fingerprint
                ),
            });
        }
        Ok(())
    }

    /// Checks this snapshot belongs to the given setup fingerprint.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ForeignSnapshot`] when it does not.
    pub fn expect_fingerprint(&self, expected: u64) -> Result<(), ServiceError> {
        if self.fingerprint != expected {
            return Err(ServiceError::ForeignSnapshot {
                expected,
                found: self.fingerprint,
            });
        }
        Ok(())
    }

    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshots always serialize")
    }

    /// Parses and validates a snapshot from JSON.
    ///
    /// On a shape mismatch the text is re-examined for a
    /// `schema_version` key, so a snapshot written by a future format
    /// fails with the version message rather than a generic parse error.
    ///
    /// # Errors
    ///
    /// [`ServiceError::CorruptSnapshot`].
    pub fn from_json(text: &str) -> Result<ServiceSnapshot, ServiceError> {
        let value: serde::Value =
            serde_json::from_str(text).map_err(|e| ServiceError::CorruptSnapshot {
                detail: e.to_string(),
            })?;
        match serde::Deserialize::from_value(&value) {
            Ok(snapshot) => {
                let snapshot: ServiceSnapshot = snapshot;
                snapshot.validate()?;
                Ok(snapshot)
            }
            Err(e) => {
                if let Some(found) = peek_schema_version(&value) {
                    if found != SNAPSHOT_SCHEMA_VERSION {
                        return Err(ServiceError::CorruptSnapshot {
                            detail: format!(
                                "snapshot has schema version {found}; this build reads version {SNAPSHOT_SCHEMA_VERSION}"
                            ),
                        });
                    }
                }
                Err(ServiceError::CorruptSnapshot {
                    detail: e.to_string(),
                })
            }
        }
    }
}

/// Best-effort `schema_version` peek on a generic JSON tree.
fn peek_schema_version(value: &serde::Value) -> Option<u32> {
    let entries = value.as_object()?;
    entries.iter().find_map(|(key, v)| {
        if key == "schema_version" {
            match v {
                serde::Value::U64(raw) => u32::try_from(*raw).ok(),
                _ => None,
            }
        } else {
            None
        }
    })
}

impl GroupingService {
    /// Captures the service as a sealed, restorable snapshot.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot::seal(ServiceState {
            config: self.config,
            mix_name: self.fleet.mix_name().to_string(),
            class_names: self.fleet.class_names().to_vec(),
            devices: self.fleet.profiles(),
            epoch: self.epoch,
            next_record: self.next_record,
            serves: self.serves,
            events_since_plan: self.events_since_plan,
            plan: self.plan.as_ref().map(|state| PlanRecord {
                mechanism: state.mechanism.clone(),
                plan: state.plan.clone(),
                planned: state.planned.members().to_vec(),
            }),
        })
    }

    /// This service's setup fingerprint (what its snapshots carry).
    pub fn fingerprint(&self) -> u64 {
        service_fingerprint(
            &self.config,
            self.fleet.mix_name(),
            self.fleet.class_names(),
        )
    }

    /// Rebuilds a service from a validated snapshot. The restored fleet
    /// is bit-identical to the one the snapshot captured, and replaying
    /// the remainder of the original event log continues exactly as an
    /// uninterrupted run would.
    ///
    /// # Errors
    ///
    /// [`ServiceSnapshot::validate`] failures and configuration
    /// validation failures.
    pub fn restore(snapshot: &ServiceSnapshot) -> Result<GroupingService, ServiceError> {
        snapshot.validate()?;
        let state = &snapshot.state;
        state.config.validate()?;
        let fleet = Population::new(
            state.mix_name.clone(),
            state.class_names.clone(),
            state.devices.clone(),
        );
        Ok(GroupingService {
            config: state.config,
            fleet,
            epoch: state.epoch,
            next_record: state.next_record,
            serves: state.serves,
            events_since_plan: state.events_since_plan,
            plan: state.plan.as_ref().map(|record| PlanState {
                mechanism: record.mechanism.clone(),
                plan: record.plan.clone(),
                planned: PlannedFleet::from_members(record.planned.clone()),
            }),
            arena: KernelArena::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventLog, ServeSummary};
    use nbiot_sim::RegroupPolicy;
    use nbiot_traffic::{ChurnModel, TrafficMix};

    fn log(devices: usize, epochs: u32, seed: u64) -> EventLog {
        EventLog::synthesize(
            &TrafficMix::mobility_churn(),
            devices,
            &ChurnModel {
                epochs,
                departure_rate: 0.15,
                arrival_rate: 0.15,
                handover_rate: 0.25,
            },
            "dr-sc",
            seed,
        )
        .unwrap()
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            policy: RegroupPolicy::Repair,
            seed: 21,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let log = log(30, 2, 1);
        let mut service = GroupingService::new(config(), &log).unwrap();
        service.replay(&log).unwrap();
        let snapshot = service.snapshot();
        snapshot.validate().unwrap();
        let back = ServiceSnapshot::from_json(&snapshot.to_json_pretty()).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn restore_midway_continues_bit_identically() {
        let log = log(40, 4, 2);
        // Uninterrupted run.
        let mut straight = GroupingService::new(config(), &log).unwrap();
        let all: Vec<ServeSummary> = straight.replay(&log).unwrap();
        // Interrupted run: replay half, snapshot, restore, continue.
        let mut first = GroupingService::new(config(), &log).unwrap();
        let cut = log.records.len() / 2;
        let mut summaries = Vec::new();
        for record in &log.records[..cut] {
            if let crate::Applied::Served(s) = first.apply(record).unwrap() {
                summaries.push(s);
            }
        }
        let snapshot = ServiceSnapshot::from_json(&first.snapshot().to_json_pretty()).unwrap();
        let mut resumed = GroupingService::restore(&snapshot).unwrap();
        assert_eq!(resumed.next_record(), cut as u64);
        summaries.extend(resumed.replay(&log).unwrap());
        assert_eq!(summaries, all);
        assert_eq!(resumed.fleet(), straight.fleet());
        assert_eq!(resumed.plan(), straight.plan());
        // The final snapshots are byte-for-byte identical.
        assert_eq!(
            resumed.snapshot().to_json_pretty(),
            straight.snapshot().to_json_pretty()
        );
    }

    #[test]
    fn tampered_state_fails_the_checksum() {
        let log = log(20, 1, 3);
        let mut service = GroupingService::new(config(), &log).unwrap();
        service.replay(&log).unwrap();
        let mut snapshot = service.snapshot();
        snapshot.state.serves += 1;
        let err = snapshot.validate().unwrap_err();
        assert!(
            matches!(&err, ServiceError::CorruptSnapshot { detail } if detail.contains("checksum")),
            "{err}"
        );
        let err = ServiceSnapshot::from_json(&snapshot.to_json_pretty()).unwrap_err();
        assert!(matches!(err, ServiceError::CorruptSnapshot { .. }));
    }

    #[test]
    fn future_schema_versions_are_named_in_the_error() {
        let text = r#"{ "schema_version": 99, "something": "else" }"#;
        let err = ServiceSnapshot::from_json(text).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("schema version 99"), "{message}");
        assert!(message.contains("reads version 1"), "{message}");
        // A sealed snapshot with a bumped version also fails validate.
        let log = log(10, 0, 4);
        let mut service = GroupingService::new(config(), &log).unwrap();
        service.replay(&log).unwrap();
        let mut snapshot = service.snapshot();
        snapshot.schema_version = 99;
        let message = snapshot.validate().unwrap_err().to_string();
        assert!(message.contains("reads version 1"), "{message}");
    }

    #[test]
    fn fingerprint_detects_foreign_setups() {
        let log = log(15, 1, 5);
        let mut service = GroupingService::new(config(), &log).unwrap();
        service.replay(&log).unwrap();
        let snapshot = service.snapshot();
        assert_eq!(snapshot.fingerprint, service.fingerprint());
        snapshot.expect_fingerprint(service.fingerprint()).unwrap();
        // A different seed is a different setup.
        let other = ServiceConfig {
            seed: 999,
            ..config()
        };
        let foreign = service_fingerprint(&other, &log.mix_name, &log.class_names);
        assert_ne!(foreign, snapshot.fingerprint);
        let err = snapshot.expect_fingerprint(foreign).unwrap_err();
        assert!(matches!(err, ServiceError::ForeignSnapshot { .. }));
        // Thread count is normalized out: not part of the identity.
        let threaded = ServiceConfig {
            threads: 8,
            ..config()
        };
        assert_eq!(
            service_fingerprint(&threaded, &log.mix_name, &log.class_names),
            snapshot.fingerprint
        );
    }
}
