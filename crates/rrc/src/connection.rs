//! Per-device RRC state machine.

use core::fmt;

use nbiot_time::SimInstant;

/// RRC protocol state of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RrcState {
    /// RRC_IDLE: sleeping between paging occasions.
    #[default]
    Idle,
    /// Random access in progress (MSG1–MSG4).
    RandomAccess,
    /// RRC_CONNECTED.
    Connected,
}

impl fmt::Display for RrcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RrcState::Idle => "idle",
            RrcState::RandomAccess => "random-access",
            RrcState::Connected => "connected",
        };
        f.write_str(name)
    }
}

/// An illegal RRC transition — always a simulation bug, surfaced as an
/// error so tests can assert protocol discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrcTransitionError {
    /// State the connection was in.
    pub from: RrcState,
    /// Transition that was attempted.
    pub attempted: &'static str,
}

impl fmt::Display for RrcTransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot {} from state {}", self.attempted, self.from)
    }
}

impl std::error::Error for RrcTransitionError {}

/// A device's RRC connection lifecycle tracker.
///
/// Enforces the legal `idle → random-access → connected → idle` cycle and
/// records transition times, from which the simulator derives
/// connected-mode uptime.
///
/// # Example
///
/// ```
/// use nbiot_rrc::RrcConnection;
/// use nbiot_time::SimInstant;
///
/// let mut c = RrcConnection::new();
/// c.start_random_access(SimInstant::from_ms(100))?;
/// c.complete_random_access(SimInstant::from_ms(350))?;
/// let span = c.release(SimInstant::from_ms(1000))?;
/// assert_eq!(span.as_ms(), 900); // active from RA start to release
/// # Ok::<(), nbiot_rrc::RrcTransitionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RrcConnection {
    state: RrcState,
    active_since: Option<SimInstant>,
}

impl RrcConnection {
    /// Creates a tracker in RRC_IDLE.
    pub fn new() -> RrcConnection {
        RrcConnection::default()
    }

    /// Current state.
    #[inline]
    pub fn state(&self) -> RrcState {
        self.state
    }

    /// When the current active (RA + connected) episode began.
    #[inline]
    pub fn active_since(&self) -> Option<SimInstant> {
        self.active_since
    }

    /// Leaves idle and begins random access at `now`.
    ///
    /// # Errors
    ///
    /// Fails unless the device is idle.
    pub fn start_random_access(&mut self, now: SimInstant) -> Result<(), RrcTransitionError> {
        if self.state != RrcState::Idle {
            return Err(RrcTransitionError {
                from: self.state,
                attempted: "start random access",
            });
        }
        self.state = RrcState::RandomAccess;
        self.active_since = Some(now);
        Ok(())
    }

    /// Completes MSG4 and enters RRC_CONNECTED.
    ///
    /// # Errors
    ///
    /// Fails unless random access is in progress.
    pub fn complete_random_access(&mut self, _now: SimInstant) -> Result<(), RrcTransitionError> {
        if self.state != RrcState::RandomAccess {
            return Err(RrcTransitionError {
                from: self.state,
                attempted: "complete random access",
            });
        }
        self.state = RrcState::Connected;
        Ok(())
    }

    /// Releases the connection at `now`, returning the length of the whole
    /// active episode (from random-access start).
    ///
    /// # Errors
    ///
    /// Fails unless the device is connected.
    pub fn release(
        &mut self,
        now: SimInstant,
    ) -> Result<nbiot_time::SimDuration, RrcTransitionError> {
        if self.state != RrcState::Connected {
            return Err(RrcTransitionError {
                from: self.state,
                attempted: "release",
            });
        }
        let since = self
            .active_since
            .expect("active_since set when leaving idle");
        self.state = RrcState::Idle;
        self.active_since = None;
        Ok(now.saturating_duration_since(since))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_cycle() {
        let mut c = RrcConnection::new();
        assert_eq!(c.state(), RrcState::Idle);
        c.start_random_access(SimInstant::from_ms(10)).unwrap();
        assert_eq!(c.state(), RrcState::RandomAccess);
        c.complete_random_access(SimInstant::from_ms(50)).unwrap();
        assert_eq!(c.state(), RrcState::Connected);
        let span = c.release(SimInstant::from_ms(110)).unwrap();
        assert_eq!(span.as_ms(), 100);
        assert_eq!(c.state(), RrcState::Idle);
    }

    #[test]
    fn double_connect_rejected() {
        let mut c = RrcConnection::new();
        c.start_random_access(SimInstant::ZERO).unwrap();
        let err = c.start_random_access(SimInstant::ZERO).unwrap_err();
        assert_eq!(err.from, RrcState::RandomAccess);
        assert!(err.to_string().contains("cannot start random access"));
    }

    #[test]
    fn release_requires_connected() {
        let mut c = RrcConnection::new();
        assert!(c.release(SimInstant::ZERO).is_err());
        c.start_random_access(SimInstant::ZERO).unwrap();
        assert!(c.release(SimInstant::ZERO).is_err());
    }

    #[test]
    fn complete_requires_random_access() {
        let mut c = RrcConnection::new();
        assert!(c.complete_random_access(SimInstant::ZERO).is_err());
    }

    #[test]
    fn reconnect_after_release() {
        let mut c = RrcConnection::new();
        c.start_random_access(SimInstant::from_ms(0)).unwrap();
        c.complete_random_access(SimInstant::from_ms(1)).unwrap();
        c.release(SimInstant::from_ms(2)).unwrap();
        assert!(c.start_random_access(SimInstant::from_ms(3)).is_ok());
    }
}
