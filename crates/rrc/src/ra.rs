//! Random-access (RACH) procedure model.

use core::fmt;

use rand::Rng;

use nbiot_time::SimDuration;

/// Configuration of the NB-IoT contention-based random-access procedure
/// (TS 36.321 §5.1, NPRACH timing from TS 36.211 §10.1.6).
///
/// The default models a lightly loaded cell: the dominant cost is waiting
/// for the next NPRACH opportunity plus the fixed MSG1–MSG4 exchange, which
/// is how the paper treats random access. Preamble collisions can be
/// enabled for ablation studies by setting `contenders` in
/// [`RandomAccess::perform`] above 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RandomAccessConfig {
    /// NPRACH opportunity period.
    pub nprach_period: SimDuration,
    /// Number of contention preambles (subcarriers) per opportunity.
    pub preambles: u32,
    /// MSG1 (preamble) duration.
    pub msg1_duration: SimDuration,
    /// Delay from MSG1 end to MSG2 (random-access response).
    pub msg2_delay: SimDuration,
    /// Delay from MSG2 to MSG3 (RRC connection request) completion.
    pub msg3_delay: SimDuration,
    /// Delay from MSG3 to MSG4 (contention resolution / RRC setup)
    /// completion.
    pub msg4_delay: SimDuration,
    /// Maximum backoff applied after a collision.
    pub max_backoff: SimDuration,
    /// Maximum preamble attempts before the procedure fails.
    pub max_attempts: u32,
}

impl Default for RandomAccessConfig {
    fn default() -> Self {
        RandomAccessConfig {
            nprach_period: SimDuration::from_ms(320),
            preambles: 48,
            msg1_duration: SimDuration::from_ms(6),
            msg2_delay: SimDuration::from_ms(13),
            msg3_delay: SimDuration::from_ms(20),
            msg4_delay: SimDuration::from_ms(25),
            max_backoff: SimDuration::from_ms(256),
            max_attempts: 10,
        }
    }
}

impl RandomAccessConfig {
    /// Fixed latency of one successful MSG1–MSG4 exchange, excluding the
    /// wait for the NPRACH opportunity.
    pub fn exchange_latency(&self) -> SimDuration {
        self.msg1_duration + self.msg2_delay + self.msg3_delay + self.msg4_delay
    }
}

/// The random-access procedure executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RandomAccess {
    config: RandomAccessConfig,
}

impl RandomAccess {
    /// Creates an executor with the given configuration.
    pub fn new(config: RandomAccessConfig) -> RandomAccess {
        RandomAccess { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RandomAccessConfig {
        &self.config
    }

    /// Performs one contention-based random access.
    ///
    /// `contenders` is the number of *other* devices attempting random
    /// access in the same opportunity; with the default 0 the procedure is
    /// deterministic apart from the uniform wait for the next NPRACH
    /// opportunity.
    ///
    /// The returned latency spans from the moment the device decides to
    /// connect until MSG4 completes; the device is in its high-power
    /// connected/active state throughout (paper Sec. IV-A counts random
    /// access towards connected-mode uptime).
    pub fn perform<R: Rng + ?Sized>(&self, rng: &mut R, contenders: u32) -> RaOutcome {
        let cfg = &self.config;
        let mut latency = SimDuration::ZERO;
        for attempt in 1..=cfg.max_attempts {
            // Wait for the next NPRACH opportunity.
            latency += SimDuration::from_ms(rng.gen_range(0..=cfg.nprach_period.as_ms()));
            let collided = if contenders == 0 {
                false
            } else {
                // Collision iff any contender picked the same preamble.
                let p_clear = (1.0 - 1.0 / cfg.preambles as f64).powi(contenders as i32);
                rng.gen_bool(1.0 - p_clear)
            };
            if collided {
                latency += cfg.msg1_duration + cfg.msg2_delay;
                latency += SimDuration::from_ms(rng.gen_range(0..=cfg.max_backoff.as_ms()));
                continue;
            }
            latency += cfg.exchange_latency();
            return RaOutcome {
                success: true,
                attempts: attempt,
                latency,
            };
        }
        RaOutcome {
            success: false,
            attempts: cfg.max_attempts,
            latency,
        }
    }

    /// Deterministic expected latency of a collision-free random access:
    /// half an NPRACH period plus the fixed exchange.
    pub fn expected_latency(&self) -> SimDuration {
        self.config.nprach_period / 2 + self.config.exchange_latency()
    }
}

/// Result of a random-access procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RaOutcome {
    /// Whether contention resolution succeeded within the attempt budget.
    pub success: bool,
    /// Number of preamble attempts used.
    pub attempts: u32,
    /// Total latency from decision-to-connect to MSG4 completion (or
    /// failure).
    pub latency: SimDuration,
}

impl fmt::Display for RaOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} attempt(s), {}",
            if self.success { "connected" } else { "failed" },
            self.attempts,
            self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xA11CE)
    }

    #[test]
    fn collision_free_ra_always_succeeds_first_attempt() {
        let ra = RandomAccess::default();
        let mut r = rng();
        for _ in 0..100 {
            let out = ra.perform(&mut r, 0);
            assert!(out.success);
            assert_eq!(out.attempts, 1);
            let min = ra.config().exchange_latency();
            let max = min + ra.config().nprach_period;
            assert!(out.latency >= min && out.latency <= max, "{out}");
        }
    }

    #[test]
    fn heavy_contention_costs_attempts() {
        let ra = RandomAccess::default();
        let mut r = rng();
        let mut total_attempts = 0u32;
        for _ in 0..200 {
            let out = ra.perform(&mut r, 200);
            total_attempts += out.attempts;
        }
        // With 200 contenders on 48 preambles collisions dominate:
        // substantially more than one attempt on average.
        assert!(total_attempts > 300, "attempts {total_attempts}");
    }

    #[test]
    fn procedure_can_fail_under_extreme_load() {
        let cfg = RandomAccessConfig {
            max_attempts: 1,
            preambles: 1, // every contender collides
            ..RandomAccessConfig::default()
        };
        let ra = RandomAccess::new(cfg);
        let out = ra.perform(&mut rng(), 10);
        assert!(!out.success);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn expected_latency_is_centred() {
        let ra = RandomAccess::default();
        let mut r = rng();
        let n = 2000;
        let mean_ms: f64 = (0..n)
            .map(|_| ra.perform(&mut r, 0).latency.as_ms() as f64)
            .sum::<f64>()
            / n as f64;
        let expected = ra.expected_latency().as_ms() as f64;
        assert!(
            (mean_ms - expected).abs() < expected * 0.1,
            "mean {mean_ms} vs expected {expected}"
        );
    }

    #[test]
    fn outcome_display() {
        let out = RaOutcome {
            success: true,
            attempts: 2,
            latency: SimDuration::from_ms(300),
        };
        assert!(out.to_string().contains("connected after 2"));
    }
}
