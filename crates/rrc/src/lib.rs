//! NB-IoT RRC/MAC procedure models.
//!
//! The three grouping mechanisms of the paper differ in *which* control
//! procedures they run and *when*:
//!
//! * every mechanism pages devices ([`PagingMessage`]) and connects them via
//!   the random-access procedure ([`RandomAccess`], TS 36.321),
//! * **DA-SC** additionally reconfigures the DRX cycle over a dedicated
//!   connection ([`DlMessage::RrcConnectionReconfiguration`]) and releases
//!   the device immediately ([`DlMessage::RrcConnectionRelease`]),
//! * **DR-SI** extends the paging message with the non-critical
//!   `mltc-transmission` extension ([`MltcNotification`]: device identity +
//!   time remaining until the multicast transmission) and introduces the
//!   [`T322`] timer and the non-standard
//!   [`EstablishmentCause::MulticastReception`] — which is exactly why that
//!   mechanism is *not* standards-compliant
//!   ([`PagingMessage::is_standards_compliant`]).
//!
//! Procedure airtime/latency costs are centralized in [`SignallingCosts`]
//! so that the energy and bandwidth accounting of the simulator stays
//! consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod connection;
mod drx_fsm;
mod messages;
mod ra;
mod signalling;
mod timer;

pub use connection::{RrcConnection, RrcState, RrcTransitionError};
pub use drx_fsm::{DrxPhase, DrxStateMachine, DrxTransitionError};
pub use messages::{
    DlMessage, EstablishmentCause, MltcNotification, PagingMessage, PagingRecord,
    RrcConnectionRequest, MAX_PAGING_RECORDS,
};
pub use ra::{RaOutcome, RandomAccess, RandomAccessConfig};
pub use signalling::SignallingCosts;
pub use timer::{InactivityTimer, T322};
