//! Centralized signalling cost book.

use nbiot_time::SimDuration;

use crate::{DlMessage, PagingMessage};

/// Airtime/latency costs of control procedures, used consistently by the
/// bandwidth ledger and the uptime accounting.
///
/// Small control messages ride on NPDCCH + NPDSCH with the smallest
/// transport blocks; at NB-IoT rates a paging message costs a handful of
/// subframes. The defaults assume normal coverage (no repetition) — the
/// values scale linearly for deeper coverage classes if needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SignallingCosts {
    /// Airtime per paging message, base part (NPDCCH + header).
    pub paging_base: SimDuration,
    /// Additional airtime per 256 bits of paging payload.
    pub paging_per_256_bits: SimDuration,
    /// Downlink airtime of the RA exchange (MSG2 + MSG4).
    pub ra_downlink: SimDuration,
    /// Airtime of an `RRCConnectionSetup`.
    pub rrc_setup: SimDuration,
    /// Airtime of an `RRCConnectionReconfiguration`.
    pub rrc_reconfiguration: SimDuration,
    /// Airtime of an `RRCConnectionRelease`.
    pub rrc_release: SimDuration,
    /// Device-side processing time to decode a paging message while in
    /// light sleep (adds to light-sleep uptime).
    pub paging_decode_time: SimDuration,
    /// Extra decode time for the `mltc-transmission` extension — the
    /// "negligible increase" of DR-SI in Fig. 6(a).
    pub mltc_decode_time: SimDuration,
    /// Light-sleep uptime of monitoring one (empty) paging occasion.
    pub po_monitor_time: SimDuration,
}

impl Default for SignallingCosts {
    fn default() -> Self {
        SignallingCosts {
            paging_base: SimDuration::from_ms(2),
            paging_per_256_bits: SimDuration::from_ms(2),
            ra_downlink: SimDuration::from_ms(4),
            rrc_setup: SimDuration::from_ms(2),
            rrc_reconfiguration: SimDuration::from_ms(2),
            rrc_release: SimDuration::from_ms(1),
            paging_decode_time: SimDuration::from_ms(8),
            mltc_decode_time: SimDuration::from_ms(2),
            po_monitor_time: SimDuration::from_ms(4),
        }
    }
}

impl SignallingCosts {
    /// Cell airtime consumed by broadcasting `msg` in one paging occasion.
    pub fn paging_airtime(&self, msg: &PagingMessage) -> SimDuration {
        self.paging_base + self.paging_per_256_bits * msg.size_bits().div_ceil(256)
    }

    /// Device light-sleep uptime for receiving `msg` (on top of the PO
    /// monitoring itself).
    pub fn paging_reception_uptime(&self, msg: &PagingMessage) -> SimDuration {
        let mltc_extra = if msg.is_standards_compliant() {
            SimDuration::ZERO
        } else {
            self.mltc_decode_time
        };
        self.paging_decode_time + mltc_extra
    }

    /// Cell airtime of a dedicated downlink message.
    pub fn dl_message_airtime(&self, msg: DlMessage) -> SimDuration {
        match msg {
            DlMessage::RrcConnectionSetup => self.rrc_setup,
            DlMessage::RrcConnectionReconfiguration { .. } => self.rrc_reconfiguration,
            DlMessage::RrcConnectionRelease => self.rrc_release,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MltcNotification;
    use nbiot_time::UeId;

    #[test]
    fn paging_airtime_grows_with_records() {
        let costs = SignallingCosts::default();
        let small = PagingMessage::new().with_record(UeId(1));
        let mut big = PagingMessage::new();
        for i in 0..16 {
            big.push_record(UeId(i));
        }
        assert!(costs.paging_airtime(&big) > costs.paging_airtime(&small));
    }

    #[test]
    fn mltc_reception_costs_slightly_more() {
        let costs = SignallingCosts::default();
        let plain = PagingMessage::new().with_record(UeId(1));
        let ext = PagingMessage::new().with_mltc(MltcNotification {
            ue: UeId(1),
            time_remaining: SimDuration::from_secs(1),
        });
        let plain_cost = costs.paging_reception_uptime(&plain);
        let ext_cost = costs.paging_reception_uptime(&ext);
        assert!(ext_cost > plain_cost);
        // ... but only slightly: well under 2x.
        assert!(ext_cost.as_ms() < 2 * plain_cost.as_ms());
    }

    #[test]
    fn dl_message_airtime_covers_all_kinds() {
        let costs = SignallingCosts::default();
        for msg in [
            DlMessage::RrcConnectionSetup,
            DlMessage::RrcConnectionReconfiguration { new_cycle: None },
            DlMessage::RrcConnectionRelease,
        ] {
            assert!(!costs.dl_message_airtime(msg).is_zero());
        }
    }
}
