//! The device-side DRX cycle state machine (paper Fig. 1).
//!
//! The paper's Fig. 1 describes the idle-mode life of an NB-IoT device:
//! sleep with RF/TX off → wake at the paging occasion and check the paging
//! channel → if not paged, back to sleep; if paged, connect and receive
//! downlink data → start the inactivity timer → when it expires, release
//! and begin a new DRX cycle. This module implements that machine
//! literally, with every transition validated, so simulations and tests
//! can assert protocol discipline at the device level.

use core::fmt;

use nbiot_time::{PagingSchedule, SimInstant};

use crate::InactivityTimer;

/// The device's DRX phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DrxPhase {
    /// RF and TX modules off; waiting for the next paging occasion.
    Sleeping {
        /// The next PO at which the device will wake.
        next_po: SimInstant,
    },
    /// Briefly awake, decoding the paging channel.
    CheckingPaging {
        /// The PO being monitored.
        po: SimInstant,
    },
    /// Connected, receiving or awaiting downlink data; the inactivity
    /// timer restarts at every data activity.
    Connected {
        /// Current inactivity-timer expiry.
        inactivity_expires: SimInstant,
    },
}

impl fmt::Display for DrxPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrxPhase::Sleeping { next_po } => write!(f, "sleeping (next PO {next_po})"),
            DrxPhase::CheckingPaging { po } => write!(f, "checking paging at {po}"),
            DrxPhase::Connected { inactivity_expires } => {
                write!(f, "connected (TI expires {inactivity_expires})")
            }
        }
    }
}

/// An illegal DRX transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrxTransitionError {
    /// Human-readable description of the attempted transition.
    pub attempted: &'static str,
    /// Phase the device was in.
    pub phase: String,
}

impl fmt::Display for DrxTransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot {} while {}", self.attempted, self.phase)
    }
}

impl std::error::Error for DrxTransitionError {}

/// The Fig. 1 state machine for one device.
///
/// # Example
///
/// ```
/// use nbiot_rrc::{DrxStateMachine, InactivityTimer};
/// use nbiot_time::{DrxCycle, PagingConfig, PagingSchedule, SimInstant, UeId};
///
/// let schedule = PagingSchedule::new(&PagingConfig::drx(DrxCycle::Rf128), UeId(5))?;
/// let mut fsm = DrxStateMachine::new(schedule, InactivityTimer::default(), SimInstant::ZERO);
///
/// let po = fsm.next_wake().expect("sleeping devices have a next PO");
/// fsm.wake_at_po(po)?;               // RF on, check paging channel
/// fsm.paged(po)?;                    // a page for us: connect
/// let released = fsm.inactivity_expired(fsm.inactivity_expiry().unwrap())?;
/// assert!(released > po);            // back to sleep after TI
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DrxStateMachine {
    schedule: PagingSchedule,
    ti: InactivityTimer,
    phase: DrxPhase,
}

impl DrxStateMachine {
    /// Creates a machine sleeping until its first PO at or after `now`.
    pub fn new(schedule: PagingSchedule, ti: InactivityTimer, now: SimInstant) -> DrxStateMachine {
        let next_po = schedule.first_po_at_or_after(now);
        DrxStateMachine {
            schedule,
            ti,
            phase: DrxPhase::Sleeping { next_po },
        }
    }

    /// Current phase.
    pub fn phase(&self) -> DrxPhase {
        self.phase
    }

    /// The instant of the next wake-up, when sleeping.
    pub fn next_wake(&self) -> Option<SimInstant> {
        match self.phase {
            DrxPhase::Sleeping { next_po } => Some(next_po),
            _ => None,
        }
    }

    /// The current inactivity-timer expiry, when connected.
    pub fn inactivity_expiry(&self) -> Option<SimInstant> {
        match self.phase {
            DrxPhase::Connected { inactivity_expires } => Some(inactivity_expires),
            _ => None,
        }
    }

    fn error(&self, attempted: &'static str) -> DrxTransitionError {
        DrxTransitionError {
            attempted,
            phase: self.phase.to_string(),
        }
    }

    /// Wakes at the scheduled PO to monitor the paging channel.
    ///
    /// # Errors
    ///
    /// Fails unless the device is sleeping and `po` is its scheduled next
    /// PO.
    pub fn wake_at_po(&mut self, po: SimInstant) -> Result<(), DrxTransitionError> {
        match self.phase {
            DrxPhase::Sleeping { next_po } if next_po == po => {
                self.phase = DrxPhase::CheckingPaging { po };
                Ok(())
            }
            _ => Err(self.error("wake at PO")),
        }
    }

    /// No page was present: return to sleep until the next PO.
    ///
    /// # Errors
    ///
    /// Fails unless the device is checking its paging channel.
    pub fn not_paged(&mut self) -> Result<SimInstant, DrxTransitionError> {
        match self.phase {
            DrxPhase::CheckingPaging { po } => {
                let next_po = self
                    .schedule
                    .first_po_at_or_after(po + nbiot_time::SimDuration::from_ms(1));
                self.phase = DrxPhase::Sleeping { next_po };
                Ok(next_po)
            }
            _ => Err(self.error("return to sleep")),
        }
    }

    /// A page addressed to this device: connect to the network; the
    /// inactivity timer starts at `now`.
    ///
    /// # Errors
    ///
    /// Fails unless the device is checking its paging channel.
    pub fn paged(&mut self, now: SimInstant) -> Result<(), DrxTransitionError> {
        match self.phase {
            DrxPhase::CheckingPaging { .. } => {
                self.phase = DrxPhase::Connected {
                    inactivity_expires: self.ti.expiry_after(now),
                };
                Ok(())
            }
            _ => Err(self.error("connect")),
        }
    }

    /// Downlink data arrived at `now`: the inactivity timer restarts
    /// (paper Fig. 1: "after the data reception the device starts the
    /// inactivity timer").
    ///
    /// # Errors
    ///
    /// Fails unless the device is connected.
    pub fn data_activity(&mut self, now: SimInstant) -> Result<(), DrxTransitionError> {
        match self.phase {
            DrxPhase::Connected { .. } => {
                self.phase = DrxPhase::Connected {
                    inactivity_expires: self.ti.expiry_after(now),
                };
                Ok(())
            }
            _ => Err(self.error("receive data")),
        }
    }

    /// The inactivity timer expired (or the eNB released the connection
    /// early, as DA-SC does): back to sleep; a new DRX cycle begins.
    /// Returns the next PO.
    ///
    /// # Errors
    ///
    /// Fails unless the device is connected.
    pub fn inactivity_expired(
        &mut self,
        now: SimInstant,
    ) -> Result<SimInstant, DrxTransitionError> {
        match self.phase {
            DrxPhase::Connected { .. } => {
                let next_po = self.schedule.first_po_at_or_after(now);
                self.phase = DrxPhase::Sleeping { next_po };
                Ok(next_po)
            }
            _ => Err(self.error("release")),
        }
    }

    /// Replaces the paging schedule (a DA-SC reconfiguration) — allowed in
    /// any phase; takes effect from `now`.
    pub fn reconfigure(&mut self, schedule: PagingSchedule, now: SimInstant) {
        self.schedule = schedule;
        if let DrxPhase::Sleeping { .. } = self.phase {
            self.phase = DrxPhase::Sleeping {
                next_po: self.schedule.first_po_at_or_after(now),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbiot_time::{DrxCycle, PagingConfig, SimDuration, UeId};

    fn fsm() -> DrxStateMachine {
        let schedule = PagingSchedule::new(&PagingConfig::drx(DrxCycle::Rf128), UeId(5)).unwrap();
        DrxStateMachine::new(schedule, InactivityTimer::default(), SimInstant::ZERO)
    }

    #[test]
    fn fig1_idle_loop_without_page() {
        // Sleep -> PO check -> no page -> sleep, advancing one cycle.
        let mut m = fsm();
        let po1 = m.next_wake().unwrap();
        m.wake_at_po(po1).unwrap();
        let po2 = m.not_paged().unwrap();
        assert_eq!((po2 - po1).as_ms(), 1280);
        assert!(matches!(m.phase(), DrxPhase::Sleeping { .. }));
    }

    #[test]
    fn fig1_paged_connect_and_release() {
        let mut m = fsm();
        let po = m.next_wake().unwrap();
        m.wake_at_po(po).unwrap();
        m.paged(po).unwrap();
        let expiry = m.inactivity_expiry().unwrap();
        assert_eq!(expiry, po + InactivityTimer::default().duration());
        let next = m.inactivity_expired(expiry).unwrap();
        assert!(next >= expiry);
        assert!(matches!(m.phase(), DrxPhase::Sleeping { .. }));
    }

    #[test]
    fn data_activity_restarts_inactivity_timer() {
        let mut m = fsm();
        let po = m.next_wake().unwrap();
        m.wake_at_po(po).unwrap();
        m.paged(po).unwrap();
        let first_expiry = m.inactivity_expiry().unwrap();
        let data_at = po + SimDuration::from_secs(3);
        m.data_activity(data_at).unwrap();
        let new_expiry = m.inactivity_expiry().unwrap();
        assert_eq!(new_expiry, data_at + InactivityTimer::default().duration());
        assert!(new_expiry > first_expiry);
    }

    #[test]
    fn waking_at_wrong_po_rejected() {
        let mut m = fsm();
        let po = m.next_wake().unwrap();
        let err = m.wake_at_po(po + SimDuration::from_ms(1)).unwrap_err();
        assert!(err.to_string().contains("cannot wake at PO"));
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut m = fsm();
        assert!(m.paged(SimInstant::ZERO).is_err()); // not checking paging
        assert!(m.data_activity(SimInstant::ZERO).is_err()); // not connected
        assert!(m.inactivity_expired(SimInstant::ZERO).is_err()); // not connected
        let po = m.next_wake().unwrap();
        m.wake_at_po(po).unwrap();
        assert!(m.wake_at_po(po).is_err()); // already awake
    }

    #[test]
    fn reconfigure_moves_next_po_to_new_grid() {
        // A DA-SC-style shrink: after reconfiguration the next wake-up
        // follows the shorter cycle.
        let mut m = fsm();
        let schedule_fast =
            PagingSchedule::new(&PagingConfig::drx(DrxCycle::Rf32), UeId(5)).unwrap();
        let now = SimInstant::from_secs(10);
        m.reconfigure(schedule_fast, now);
        let next = m.next_wake().unwrap();
        assert!((next - now).as_ms() <= 320);
    }
}
