//! RRC message models.

use core::fmt;

use nbiot_time::{PagingCycle, SimDuration, UeId};

/// Maximum paging records per paging message (TS 36.331
/// `maxPageRec = 16`).
pub const MAX_PAGING_RECORDS: usize = 16;

/// One entry of the `PagingRecordList`: a device being paged to connect and
/// receive downlink data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PagingRecord {
    /// The paged device.
    pub ue: UeId,
}

/// The DR-SI `mltc-transmission` non-critical paging extension: notifies a
/// device of an imminent multicast transmission *without* requiring it to
/// connect (paper Sec. III-C).
///
/// The device identity appears only here — not in the `PagingRecordList` —
/// so devices can tell multicast notifications apart from ordinary pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MltcNotification {
    /// The notified device.
    pub ue: UeId,
    /// Time remaining until the multicast transmission instant `t`.
    pub time_remaining: SimDuration,
}

/// A paging message broadcast in one paging occasion.
///
/// # Example
///
/// ```
/// use nbiot_rrc::{MltcNotification, PagingMessage};
/// use nbiot_time::{SimDuration, UeId};
///
/// let standard = PagingMessage::new().with_record(UeId(1));
/// assert!(standard.is_standards_compliant());
///
/// let extended = PagingMessage::new().with_mltc(MltcNotification {
///     ue: UeId(2),
///     time_remaining: SimDuration::from_secs(40),
/// });
/// assert!(!extended.is_standards_compliant());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PagingMessage {
    records: Vec<PagingRecord>,
    mltc_transmission: Vec<MltcNotification>,
}

impl PagingMessage {
    /// Creates an empty paging message.
    pub fn new() -> PagingMessage {
        PagingMessage::default()
    }

    /// Adds an ordinary paging record (builder style).
    ///
    /// # Panics
    ///
    /// Panics when the record list already holds
    /// [`MAX_PAGING_RECORDS`] entries.
    pub fn with_record(mut self, ue: UeId) -> PagingMessage {
        self.push_record(ue);
        self
    }

    /// Adds an ordinary paging record.
    ///
    /// # Panics
    ///
    /// Panics when the record list already holds
    /// [`MAX_PAGING_RECORDS`] entries.
    pub fn push_record(&mut self, ue: UeId) {
        assert!(
            self.records.len() < MAX_PAGING_RECORDS,
            "paging message full: {MAX_PAGING_RECORDS} records"
        );
        self.records.push(PagingRecord { ue });
    }

    /// Adds a DR-SI multicast notification (builder style).
    pub fn with_mltc(mut self, n: MltcNotification) -> PagingMessage {
        self.mltc_transmission.push(n);
        self
    }

    /// The ordinary paging records.
    pub fn records(&self) -> &[PagingRecord] {
        &self.records
    }

    /// The DR-SI multicast notifications.
    pub fn mltc_notifications(&self) -> &[MltcNotification] {
        &self.mltc_transmission
    }

    /// Whether `ue` is paged (ordinary record) by this message.
    pub fn pages(&self, ue: UeId) -> bool {
        self.records.iter().any(|r| r.ue == ue)
    }

    /// Whether `ue` is notified of a multicast transmission.
    pub fn notifies_multicast(&self, ue: UeId) -> Option<MltcNotification> {
        self.mltc_transmission.iter().copied().find(|n| n.ue == ue)
    }

    /// `true` when the message is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.mltc_transmission.is_empty()
    }

    /// A message is standards-compliant iff it carries no
    /// `mltc-transmission` extension — the compliance distinction between
    /// DR-SC/DA-SC and DR-SI in the paper.
    pub fn is_standards_compliant(&self) -> bool {
        self.mltc_transmission.is_empty()
    }

    /// Approximate encoded size in bits: a fixed header plus per-record and
    /// per-notification payloads (S-TMSI ≈ 40 bits per record; identity +
    /// time-remaining ≈ 56 bits per notification).
    pub fn size_bits(&self) -> u64 {
        48 + 40 * self.records.len() as u64 + 56 * self.mltc_transmission.len() as u64
    }
}

impl fmt::Display for PagingMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "paging({} records, {} mltc)",
            self.records.len(),
            self.mltc_transmission.len()
        )
    }
}

/// RRC connection establishment cause (TS 36.331), including the
/// non-standard `multicastReception` value introduced by DR-SI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EstablishmentCause {
    /// Emergency call.
    Emergency,
    /// High-priority access.
    HighPriorityAccess,
    /// Mobile-terminated access (response to ordinary paging).
    MtAccess,
    /// Mobile-originated signalling.
    MoSignalling,
    /// Mobile-originated data.
    MoData,
    /// Delay-tolerant access (MTC).
    DelayTolerantAccess,
    /// **Non-standard**: connection established to receive a multicast
    /// transmission (DR-SI, paper Sec. III-C).
    MulticastReception,
}

impl EstablishmentCause {
    /// Whether this cause exists in TS 36.331.
    pub const fn is_standard(self) -> bool {
        !matches!(self, EstablishmentCause::MulticastReception)
    }
}

impl fmt::Display for EstablishmentCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EstablishmentCause::Emergency => "emergency",
            EstablishmentCause::HighPriorityAccess => "highPriorityAccess",
            EstablishmentCause::MtAccess => "mt-Access",
            EstablishmentCause::MoSignalling => "mo-Signalling",
            EstablishmentCause::MoData => "mo-Data",
            EstablishmentCause::DelayTolerantAccess => "delayTolerantAccess-v1020",
            EstablishmentCause::MulticastReception => "multicastReception (non-standard)",
        };
        f.write_str(name)
    }
}

/// An `RRCConnectionRequest` (MSG3 of the random-access procedure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RrcConnectionRequest {
    /// Requesting device.
    pub ue: UeId,
    /// Establishment cause.
    pub cause: EstablishmentCause,
}

/// Downlink dedicated RRC messages used by the grouping mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DlMessage {
    /// `RRCConnectionSetup` (MSG4).
    RrcConnectionSetup,
    /// `RRCConnectionReconfiguration`, optionally carrying a new paging
    /// cycle (the DA-SC adaptation and restoration vehicle).
    RrcConnectionReconfiguration {
        /// New (e)DRX cycle to apply, if any.
        new_cycle: Option<PagingCycle>,
    },
    /// `RRCConnectionRelease`: sends the device back to idle immediately,
    /// without waiting for the inactivity timer (used by DA-SC to minimize
    /// uptime after the adaptation).
    RrcConnectionRelease,
}

impl DlMessage {
    /// Approximate encoded size in bits.
    pub const fn size_bits(self) -> u64 {
        match self {
            DlMessage::RrcConnectionSetup => 200,
            DlMessage::RrcConnectionReconfiguration { .. } => 160,
            DlMessage::RrcConnectionRelease => 80,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbiot_time::DrxCycle;

    #[test]
    fn paging_message_distinguishes_record_kinds() {
        let msg = PagingMessage::new()
            .with_record(UeId(1))
            .with_mltc(MltcNotification {
                ue: UeId(2),
                time_remaining: SimDuration::from_secs(10),
            });
        assert!(msg.pages(UeId(1)));
        assert!(!msg.pages(UeId(2))); // mltc identities are NOT paging records
        assert!(msg.notifies_multicast(UeId(2)).is_some());
        assert!(msg.notifies_multicast(UeId(1)).is_none());
    }

    #[test]
    fn compliance_depends_on_extension_only() {
        let mut msg = PagingMessage::new();
        assert!(msg.is_standards_compliant());
        for i in 0..MAX_PAGING_RECORDS {
            msg.push_record(UeId(i as u32));
        }
        assert!(msg.is_standards_compliant());
        let extended = msg.with_mltc(MltcNotification {
            ue: UeId(99),
            time_remaining: SimDuration::ZERO,
        });
        assert!(!extended.is_standards_compliant());
    }

    #[test]
    #[should_panic(expected = "paging message full")]
    fn record_list_is_bounded() {
        let mut msg = PagingMessage::new();
        for i in 0..=MAX_PAGING_RECORDS {
            msg.push_record(UeId(i as u32));
        }
    }

    #[test]
    fn size_grows_with_content() {
        let empty = PagingMessage::new();
        let one = PagingMessage::new().with_record(UeId(1));
        let ext = PagingMessage::new().with_mltc(MltcNotification {
            ue: UeId(1),
            time_remaining: SimDuration::ZERO,
        });
        assert!(one.size_bits() > empty.size_bits());
        // The extension is slightly larger than a plain record (adds the
        // time-remaining field) — the "negligible increase" of Fig. 6(a).
        assert!(ext.size_bits() > one.size_bits());
    }

    #[test]
    fn multicast_reception_is_the_only_nonstandard_cause() {
        let causes = [
            EstablishmentCause::Emergency,
            EstablishmentCause::HighPriorityAccess,
            EstablishmentCause::MtAccess,
            EstablishmentCause::MoSignalling,
            EstablishmentCause::MoData,
            EstablishmentCause::DelayTolerantAccess,
        ];
        for c in causes {
            assert!(c.is_standard(), "{c}");
        }
        assert!(!EstablishmentCause::MulticastReception.is_standard());
    }

    #[test]
    fn reconfiguration_can_carry_cycle() {
        let m = DlMessage::RrcConnectionReconfiguration {
            new_cycle: Some(DrxCycle::Rf64.into()),
        };
        assert!(m.size_bits() > DlMessage::RrcConnectionRelease.size_bits());
    }
}
