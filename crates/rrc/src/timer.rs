//! Protocol timers.

use core::fmt;

use nbiot_time::{SimDuration, SimInstant};

/// The RRC inactivity timer (`TI` in the paper).
///
/// After the last data activity the eNB keeps the connection for `TI`
/// before releasing the device; commercial networks use 10–30 s
/// (paper Sec. II-B). All three grouping mechanisms lean on this window:
/// a device paged up to `TI` before the multicast instant is still awake
/// when the transmission starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InactivityTimer(SimDuration);

impl InactivityTimer {
    /// Creates an inactivity timer of length `d`.
    pub const fn new(d: SimDuration) -> InactivityTimer {
        InactivityTimer(d)
    }

    /// Timer length.
    #[inline]
    pub const fn duration(self) -> SimDuration {
        self.0
    }

    /// Expiry instant for activity ending at `last_activity`.
    #[inline]
    pub fn expiry_after(self, last_activity: SimInstant) -> SimInstant {
        last_activity + self.0
    }
}

impl Default for InactivityTimer {
    /// 10 s — the low end of the commercial 10–30 s range, and the value
    /// under which the default traffic mix reproduces the paper's Fig. 7
    /// shape (see EXPERIMENTS.md).
    fn default() -> Self {
        InactivityTimer(SimDuration::from_secs(10))
    }
}

impl fmt::Display for InactivityTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TI={}", self.0)
    }
}

/// The DR-SI wake-up timer (paper Sec. III-C).
///
/// Upon receiving an `mltc-transmission` notification the device draws a
/// uniform-random instant in `[t − TI, t)` and arms T322 to expire there;
/// at expiry it connects (with cause `multicastReception`) and waits for
/// the multicast data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct T322 {
    expires_at: SimInstant,
}

impl T322 {
    /// Arms the timer to expire at `expires_at`.
    pub const fn armed_at(expires_at: SimInstant) -> T322 {
        T322 { expires_at }
    }

    /// Expiry instant.
    #[inline]
    pub const fn expires_at(self) -> SimInstant {
        self.expires_at
    }

    /// Whether the timer has expired at `now`.
    #[inline]
    pub fn is_expired(self, now: SimInstant) -> bool {
        now >= self.expires_at
    }
}

impl fmt::Display for T322 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T322@{}", self.expires_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ti_is_in_commercial_range() {
        let ti = InactivityTimer::default().duration().as_secs_f64();
        assert!((10.0..=30.0).contains(&ti));
    }

    #[test]
    fn expiry_is_activity_plus_ti() {
        let ti = InactivityTimer::new(SimDuration::from_secs(10));
        assert_eq!(
            ti.expiry_after(SimInstant::from_secs(5)),
            SimInstant::from_secs(15)
        );
    }

    #[test]
    fn t322_expiry() {
        let t = T322::armed_at(SimInstant::from_ms(100));
        assert!(!t.is_expired(SimInstant::from_ms(99)));
        assert!(t.is_expired(SimInstant::from_ms(100)));
        assert!(t.is_expired(SimInstant::from_ms(101)));
    }
}
