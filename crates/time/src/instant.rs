//! Absolute simulation time and durations with 1 ms (subframe) resolution.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Milliseconds per LTE/NB-IoT subframe.
pub const MS_PER_SUBFRAME: u64 = 1;
/// Subframes per radio frame.
pub const SUBFRAMES_PER_FRAME: u64 = 10;
/// Milliseconds per radio frame (10 subframes x 1 ms).
pub const MS_PER_FRAME: u64 = MS_PER_SUBFRAME * SUBFRAMES_PER_FRAME;

/// An absolute point in simulation time, measured in whole milliseconds
/// (equivalently: subframes) since the simulation epoch.
///
/// The epoch (`SimInstant::ZERO`) is aligned with subframe 0 of SFN 0 of
/// hyperframe 0, so radio-frame arithmetic ([`SimInstant::frame`],
/// [`SimInstant::sfn`]) is exact.
///
/// # Example
///
/// ```
/// use nbiot_time::{SimDuration, SimInstant};
///
/// let t = SimInstant::from_frames(3) + SimDuration::from_ms(4);
/// assert_eq!(t.as_ms(), 34);
/// assert_eq!(t.frame(), 3);
/// assert_eq!(t.subframe_in_frame(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct SimInstant(u64);

impl SimInstant {
    /// The simulation epoch.
    pub const ZERO: SimInstant = SimInstant(0);
    /// The latest representable instant.
    pub const MAX: SimInstant = SimInstant(u64::MAX);

    /// Creates an instant `ms` milliseconds after the epoch.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimInstant(ms)
    }

    /// Creates an instant at the start (subframe 0) of absolute radio frame
    /// `frames`.
    #[inline]
    pub const fn from_frames(frames: u64) -> Self {
        SimInstant(frames * MS_PER_FRAME)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimInstant(secs * 1000)
    }

    /// Milliseconds since the epoch.
    #[inline]
    pub const fn as_ms(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (useful for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Absolute radio-frame number (does not wrap).
    #[inline]
    pub const fn frame(self) -> u64 {
        self.0 / MS_PER_FRAME
    }

    /// Subframe index within the current radio frame (0..=9).
    #[inline]
    pub const fn subframe_in_frame(self) -> u64 {
        (self.0 % MS_PER_FRAME) / MS_PER_SUBFRAME
    }

    /// System Frame Number: the radio-frame number modulo 1024.
    #[inline]
    pub const fn sfn(self) -> u64 {
        self.frame() % crate::sfn::SFN_PERIOD
    }

    /// Hyper System Frame Number: increments each time the SFN wraps,
    /// itself modulo 1024.
    #[inline]
    pub const fn hsfn(self) -> u64 {
        (self.frame() / crate::sfn::FRAMES_PER_HYPERFRAME) % crate::sfn::SFN_PERIOD
    }

    /// Absolute hyperframe number (does not wrap).
    #[inline]
    pub const fn hyperframe(self) -> u64 {
        self.frame() / crate::sfn::FRAMES_PER_HYPERFRAME
    }

    /// Saturating add: clamps at [`SimInstant::MAX`].
    #[inline]
    pub const fn saturating_add(self, d: SimDuration) -> Self {
        SimInstant(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration: clamps at the epoch.
    #[inline]
    pub const fn saturating_sub(self, d: SimDuration) -> Self {
        SimInstant(self.0.saturating_sub(d.0))
    }

    /// Checked subtraction of another instant.
    ///
    /// Returns `None` when `earlier` is after `self`.
    #[inline]
    pub const fn checked_duration_since(self, earlier: SimInstant) -> Option<SimDuration> {
        match self.0.checked_sub(earlier.0) {
            Some(ms) => Some(SimDuration(ms)),
            None => None,
        }
    }

    /// Duration since `earlier`, or [`SimDuration::ZERO`] when `earlier` is
    /// in the future.
    #[inline]
    pub const fn saturating_duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A span of simulation time, in whole milliseconds.
///
/// # Example
///
/// ```
/// use nbiot_time::SimDuration;
///
/// let ti = SimDuration::from_secs(20);
/// assert_eq!(ti.as_ms(), 20_000);
/// assert_eq!((ti / 2).as_secs_f64(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ms` milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration of `frames` radio frames.
    #[inline]
    pub const fn from_frames(frames: u64) -> Self {
        SimDuration(frames * MS_PER_FRAME)
    }

    /// Creates a duration of whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Length in milliseconds.
    #[inline]
    pub const fn as_ms(self) -> u64 {
        self.0
    }

    /// Length in whole radio frames (truncating).
    #[inline]
    pub const fn as_frames(self) -> u64 {
        self.0 / MS_PER_FRAME
    }

    /// Length in seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// `true` when the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    #[inline]
    pub const fn checked_mul(self, k: u64) -> Option<SimDuration> {
        match self.0.checked_mul(k) {
            Some(ms) => Some(SimDuration(ms)),
            None => None,
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimInstant {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimInstant {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_frame_zero() {
        assert_eq!(SimInstant::ZERO.frame(), 0);
        assert_eq!(SimInstant::ZERO.sfn(), 0);
        assert_eq!(SimInstant::ZERO.hsfn(), 0);
        assert_eq!(SimInstant::ZERO.subframe_in_frame(), 0);
    }

    #[test]
    fn frame_and_subframe_decomposition() {
        let t = SimInstant::from_ms(12_345);
        assert_eq!(t.frame(), 1234);
        assert_eq!(t.subframe_in_frame(), 5);
    }

    #[test]
    fn sfn_wraps_at_1024_frames() {
        let t = SimInstant::from_frames(1024);
        assert_eq!(t.sfn(), 0);
        assert_eq!(t.hsfn(), 1);
        let t2 = SimInstant::from_frames(1023);
        assert_eq!(t2.sfn(), 1023);
        assert_eq!(t2.hsfn(), 0);
    }

    #[test]
    fn hsfn_wraps_at_1024_hyperframes() {
        let t = SimInstant::from_frames(1024 * 1024);
        assert_eq!(t.hsfn(), 0);
        assert_eq!(t.hyperframe(), 1024);
    }

    #[test]
    fn instant_duration_arithmetic_round_trips() {
        let a = SimInstant::from_ms(500);
        let d = SimDuration::from_ms(250);
        assert_eq!((a + d) - a, d);
        assert_eq!((a + d) - d, a);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimInstant::ZERO.saturating_sub(SimDuration::from_ms(5)),
            SimInstant::ZERO
        );
        assert_eq!(
            SimInstant::MAX.saturating_add(SimDuration::from_ms(5)),
            SimInstant::MAX
        );
        assert_eq!(
            SimDuration::from_ms(3).saturating_sub(SimDuration::from_ms(7)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn checked_duration_since_detects_order() {
        let a = SimInstant::from_ms(10);
        let b = SimInstant::from_ms(20);
        assert_eq!(b.checked_duration_since(a), Some(SimDuration::from_ms(10)));
        assert_eq!(a.checked_duration_since(b), None);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(4);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 4, SimDuration::from_secs(1));
        assert_eq!(d.checked_mul(u64::MAX), None);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ms).sum();
        assert_eq!(total, SimDuration::from_ms(10));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimInstant::from_ms(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_ms(20480).to_string(), "20.480s");
    }
}
