//! System-frame-number helpers.

use core::fmt;

/// Number of radio frames after which the System Frame Number wraps.
pub const SFN_PERIOD: u64 = 1024;
/// Radio frames per hyperframe (one full SFN cycle).
pub const FRAMES_PER_HYPERFRAME: u64 = SFN_PERIOD;

/// An absolute (non-wrapping) radio-frame number.
///
/// Useful for computations that must not be confused by SFN wrap-around,
/// e.g. the paging-frame search in [`crate::PagingSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct FrameNumber(pub u64);

impl FrameNumber {
    /// The wrapping System Frame Number for this absolute frame.
    #[inline]
    pub const fn sfn(self) -> Sfn {
        Sfn((self.0 % SFN_PERIOD) as u16)
    }

    /// The absolute hyperframe that contains this frame.
    #[inline]
    pub const fn hyperframe(self) -> u64 {
        self.0 / FRAMES_PER_HYPERFRAME
    }

    /// Start of this frame as a [`crate::SimInstant`].
    #[inline]
    pub const fn start(self) -> crate::SimInstant {
        crate::SimInstant::from_frames(self.0)
    }
}

impl fmt::Display for FrameNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// A wrapping System Frame Number in `0..1024`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Sfn(pub u16);

impl Sfn {
    /// Wrapping increment by `n` frames.
    #[inline]
    pub const fn wrapping_add(self, n: u64) -> Sfn {
        Sfn(((self.0 as u64 + n) % SFN_PERIOD) as u16)
    }
}

impl fmt::Display for Sfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SFN {}", self.0)
    }
}

/// A wrapping hyper-SFN in `0..1024` (10.24 s per hyperframe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct HyperSfn(pub u16);

impl fmt::Display for HyperSfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H-SFN {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_number_decomposes() {
        let f = FrameNumber(1024 * 3 + 17);
        assert_eq!(f.sfn(), Sfn(17));
        assert_eq!(f.hyperframe(), 3);
        assert_eq!(f.start().as_ms(), (1024 * 3 + 17) * 10);
    }

    #[test]
    fn sfn_wrapping_add() {
        assert_eq!(Sfn(1020).wrapping_add(10), Sfn(6));
        assert_eq!(Sfn(0).wrapping_add(1024), Sfn(0));
    }
}
