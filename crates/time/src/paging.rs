//! Paging frame / paging occasion computation per 3GPP TS 36.304 §7.
//!
//! For regular DRX the UE monitors one paging occasion (PO) per DRX cycle:
//!
//! * `T` — DRX cycle in radio frames,
//! * `N = min(T, nB)`, `Ns = max(1, nB/T)`,
//! * paging frame (PF): the frames whose SFN satisfies
//!   `SFN mod T = (T div N) * (UE_ID mod N)`,
//! * `i_s = floor(UE_ID / N) mod Ns` selects the PO subframe within the PF
//!   from the FDD lookup table (`Ns = 1 → {9}`, `Ns = 2 → {4, 9}`,
//!   `Ns = 4 → {0, 4, 5, 9}`).
//!
//! For eDRX (TS 36.304 §7.3) the UE additionally only pages inside a paging
//! time window (PTW) that recurs once per eDRX cycle:
//!
//! * paging hyperframe (PH): `H-SFN mod T_eDRX,H = UE_ID mod T_eDRX,H`,
//! * PTW start: `SFN = 256 * i_eDRX` with
//!   `i_eDRX = floor(UE_ID / T_eDRX,H) mod 4`,
//! * PTW length: 1–16 units of 2.56 s; inside the PTW the UE follows its
//!   regular DRX formula above.
//!
//! All arithmetic here is done on absolute (non-wrapping) frame numbers;
//! because every standard cycle divides the 1024-frame SFN period (and every
//! eDRX cycle divides the 1024-hyperframe H-SFN period), absolute and
//! wrapping arithmetic agree.

use core::fmt;

use crate::{
    DrxCycle, EdrxCycle, PagingCycle, PtwLength, SimDuration, SimInstant, TimeError, TimeWindow,
    FRAMES_PER_HYPERFRAME, MS_PER_FRAME,
};

/// A UE identity used for paging-occasion derivation (the standard uses
/// `IMSI mod 1024`; any stable per-device integer works for simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct UeId(pub u32);

impl fmt::Display for UeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ue{}", self.0)
    }
}

/// The cell-wide `nB` parameter controlling paging density
/// (TS 36.331 `PCCH-Config`): the number of paging occasions per DRX cycle
/// across the cell is `min(nB, T) ... nB`, expressed relative to `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NbParam {
    /// `nB = 4T` (4 POs per paging frame).
    FourT,
    /// `nB = 2T` (2 POs per paging frame).
    TwoT,
    /// `nB = T` (1 PO per paging frame, every frame can be a PF).
    #[default]
    OneT,
    /// `nB = T/2`.
    HalfT,
    /// `nB = T/4`.
    QuarterT,
    /// `nB = T/8`.
    EighthT,
    /// `nB = T/16`.
    SixteenthT,
    /// `nB = T/32`.
    ThirtySecondT,
}

impl NbParam {
    /// All standard values, densest first.
    pub const ALL: [NbParam; 8] = [
        NbParam::FourT,
        NbParam::TwoT,
        NbParam::OneT,
        NbParam::HalfT,
        NbParam::QuarterT,
        NbParam::EighthT,
        NbParam::SixteenthT,
        NbParam::ThirtySecondT,
    ];

    /// `nB` as a (numerator, denominator) fraction of `T`.
    #[inline]
    pub const fn fraction(self) -> (u64, u64) {
        match self {
            NbParam::FourT => (4, 1),
            NbParam::TwoT => (2, 1),
            NbParam::OneT => (1, 1),
            NbParam::HalfT => (1, 2),
            NbParam::QuarterT => (1, 4),
            NbParam::EighthT => (1, 8),
            NbParam::SixteenthT => (1, 16),
            NbParam::ThirtySecondT => (1, 32),
        }
    }

    /// `nB` evaluated for a DRX cycle of `t_frames` (at least 1).
    #[inline]
    pub const fn value(self, t_frames: u64) -> u64 {
        let (n, d) = self.fraction();
        let v = t_frames * n / d;
        if v == 0 {
            1
        } else {
            v
        }
    }
}

impl fmt::Display for NbParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (n, d) = self.fraction();
        if d == 1 {
            write!(f, "nB={n}T")
        } else {
            write!(f, "nB=T/{d}")
        }
    }
}

/// Per-device paging configuration: the (e)DRX cycle plus the cell's `nB`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PagingConfig {
    /// The device's negotiated paging cycle.
    pub cycle: PagingCycle,
    /// Cell-wide paging density parameter.
    pub nb: NbParam,
}

impl PagingConfig {
    /// Regular-DRX configuration with the default `nB = T`.
    pub const fn drx(cycle: DrxCycle) -> PagingConfig {
        PagingConfig {
            cycle: PagingCycle::Drx(cycle),
            nb: NbParam::OneT,
        }
    }

    /// eDRX configuration with one PO per cycle (shortest PTW, 2.56 s
    /// in-window DRX) and the default `nB = T`.
    pub const fn edrx(cycle: EdrxCycle) -> PagingConfig {
        PagingConfig {
            cycle: PagingCycle::edrx(cycle),
            nb: NbParam::OneT,
        }
    }

    /// Full eDRX configuration.
    pub const fn edrx_with(cycle: EdrxCycle, ptw: PtwLength, ptw_drx: DrxCycle) -> PagingConfig {
        PagingConfig {
            cycle: PagingCycle::Edrx {
                cycle,
                ptw,
                ptw_drx,
            },
            nb: NbParam::OneT,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::PtwShorterThanDrx`] when an eDRX paging time
    /// window is shorter than the in-window DRX cycle (no PO would be
    /// guaranteed inside the window).
    pub fn validate(&self) -> Result<(), TimeError> {
        if let PagingCycle::Edrx {
            cycle,
            ptw,
            ptw_drx,
        } = self.cycle
        {
            if ptw.frames() < ptw_drx.frames() {
                return Err(TimeError::PtwShorterThanDrx {
                    ptw_frames: ptw.frames(),
                    drx_frames: ptw_drx.frames(),
                });
            }
            if ptw.frames() > cycle.frames() {
                return Err(TimeError::PtwLongerThanCycle {
                    ptw_frames: ptw.frames(),
                    cycle_frames: cycle.frames(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for PagingConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.cycle, self.nb)
    }
}

/// eDRX-specific precomputed parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EdrxParams {
    /// eDRX cycle in hyperframes.
    cycle_hf: u64,
    /// Paging hyperframe offset: `UE_ID mod T_eDRX,H`.
    ph_offset: u64,
    /// PTW start frame within the paging hyperframe (`256 * i_eDRX`).
    ptw_start_frame: u64,
    /// PTW length in frames.
    ptw_frames: u64,
}

/// A device's fully resolved paging-occasion schedule.
///
/// Construction resolves the TS 36.304 formulas once; all queries are then
/// O(1) (DRX) or O(POs per PTW) (eDRX).
///
/// # Example
///
/// ```
/// use nbiot_time::{EdrxCycle, PagingConfig, PagingSchedule, SimInstant, UeId};
///
/// let cfg = PagingConfig::edrx(EdrxCycle::Hf2); // 20.48 s cycle
/// let s = PagingSchedule::new(&cfg, UeId(7))?;
/// let po = s.first_po_at_or_after(SimInstant::ZERO);
/// let next = s.first_po_at_or_after(po + nbiot_time::SimDuration::from_ms(1));
/// assert_eq!((next - po).as_ms(), 20_480);
/// # Ok::<(), nbiot_time::TimeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PagingSchedule {
    /// Original cycle (kept for reporting).
    cycle: PagingCycle,
    /// In-window (or plain) DRX cycle length in frames.
    t_frames: u64,
    /// Paging-frame offset within the DRX cycle, in frames.
    pf_offset: u64,
    /// PO subframe within the paging frame (0..=9), in ms.
    po_subframe: u64,
    /// eDRX parameters, when the cycle is extended.
    edrx: Option<EdrxParams>,
}

/// PO subframe lookup for FDD, indexed by `i_s` (TS 36.304 Table 7.2).
const PO_SUBFRAME_NS1: [u64; 1] = [9];
const PO_SUBFRAME_NS2: [u64; 2] = [4, 9];
const PO_SUBFRAME_NS4: [u64; 4] = [0, 4, 5, 9];

impl PagingSchedule {
    /// Resolves the paging schedule of `ue` under `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates [`PagingConfig::validate`] failures.
    pub fn new(cfg: &PagingConfig, ue: UeId) -> Result<PagingSchedule, TimeError> {
        cfg.validate()?;
        let ue_id = ue.0 as u64;
        let (t_frames, edrx) = match cfg.cycle {
            PagingCycle::Drx(d) => (d.frames(), None),
            PagingCycle::Edrx {
                cycle,
                ptw,
                ptw_drx,
            } => {
                let cycle_hf = cycle.hyperframes();
                let i_edrx = (ue_id / cycle_hf) % 4;
                (
                    ptw_drx.frames(),
                    Some(EdrxParams {
                        cycle_hf,
                        ph_offset: ue_id % cycle_hf,
                        ptw_start_frame: 256 * i_edrx,
                        ptw_frames: ptw.frames(),
                    }),
                )
            }
        };
        let nb = cfg.nb.value(t_frames);
        let n = t_frames.min(nb);
        let ns = (nb / t_frames).max(1);
        let pf_offset = (t_frames / n) * (ue_id % n);
        let i_s = (ue_id / n) % ns;
        let po_subframe = match ns {
            1 => PO_SUBFRAME_NS1[i_s as usize],
            2 => PO_SUBFRAME_NS2[i_s as usize],
            4 => PO_SUBFRAME_NS4[i_s as usize],
            other => {
                return Err(TimeError::UnsupportedNb {
                    nb_over_t_32: (other * 32) as u32,
                })
            }
        };
        Ok(PagingSchedule {
            cycle: cfg.cycle,
            t_frames,
            pf_offset,
            po_subframe,
            edrx,
        })
    }

    /// The configured paging cycle.
    #[inline]
    pub fn cycle(&self) -> PagingCycle {
        self.cycle
    }

    /// Period after which the PO pattern repeats.
    #[inline]
    pub fn period(&self) -> SimDuration {
        self.cycle.period()
    }

    /// Number of POs the device monitors per repetition period
    /// (1 for DRX; PTW occupancy for eDRX).
    pub fn pos_per_period(&self) -> u64 {
        match self.edrx {
            None => 1,
            Some(e) => {
                // Alignment of the DRX grid inside the PTW is identical each
                // cycle because T divides the 1024-frame hyperframe.
                let first = first_multiple_offset(e.ptw_start_frame, self.t_frames, self.pf_offset);
                if first >= e.ptw_frames {
                    0
                } else {
                    1 + (e.ptw_frames - 1 - first) / self.t_frames
                }
            }
        }
    }

    /// The first PO at or after `t`.
    pub fn first_po_at_or_after(&self, t: SimInstant) -> SimInstant {
        match self.edrx {
            None => {
                let base = self.pf_offset * MS_PER_FRAME + self.po_subframe;
                let period = self.t_frames * MS_PER_FRAME;
                let t_ms = t.as_ms();
                if t_ms <= base {
                    SimInstant::from_ms(base)
                } else {
                    let k = (t_ms - base).div_ceil(period);
                    SimInstant::from_ms(base + k * period)
                }
            }
            Some(e) => {
                // Start from the PTW that could contain t (or the previous
                // one when t is mid-PTW), then walk forward.
                let hyper = t.as_ms() / (FRAMES_PER_HYPERFRAME * MS_PER_FRAME);
                let mut m = (hyper.saturating_sub(e.ph_offset) / e.cycle_hf).saturating_sub(1);
                loop {
                    for po in self.pos_in_ptw(e, m) {
                        if po >= t {
                            return po;
                        }
                    }
                    m += 1;
                }
            }
        }
    }

    /// The last PO strictly before `t`, if any exists since the epoch.
    pub fn last_po_before(&self, t: SimInstant) -> Option<SimInstant> {
        match self.edrx {
            None => {
                let base = self.pf_offset * MS_PER_FRAME + self.po_subframe;
                let period = self.t_frames * MS_PER_FRAME;
                let t_ms = t.as_ms();
                if t_ms <= base {
                    None
                } else {
                    let k = (t_ms - base - 1) / period;
                    Some(SimInstant::from_ms(base + k * period))
                }
            }
            Some(e) => {
                let hyper = t.as_ms() / (FRAMES_PER_HYPERFRAME * MS_PER_FRAME);
                let mut m = hyper.saturating_sub(e.ph_offset) / e.cycle_hf + 1;
                loop {
                    let mut best = None;
                    for po in self.pos_in_ptw(e, m) {
                        if po < t {
                            best = Some(po);
                        }
                    }
                    if let Some(po) = best {
                        return Some(po);
                    }
                    if m == 0 {
                        return None;
                    }
                    m -= 1;
                }
            }
        }
    }

    /// All POs inside the half-open `window`, in order.
    pub fn pos_in(&self, window: TimeWindow) -> Vec<SimInstant> {
        self.iter_from(window.start())
            .take_while(|&po| po < window.end())
            .collect()
    }

    /// Whether the device has at least one PO inside `window`.
    pub fn has_po_in(&self, window: TimeWindow) -> bool {
        if window.is_empty() {
            return false;
        }
        self.first_po_at_or_after(window.start()) < window.end()
    }

    /// Number of POs monitored in the half-open interval `[from, to)`.
    ///
    /// Computed analytically per repetition period, so it is cheap even for
    /// very long intervals.
    pub fn count_pos_between(&self, from: SimInstant, to: SimInstant) -> u64 {
        if to <= from {
            return 0;
        }
        let period_ms = self.period().as_ms();
        let span = to.as_ms() - from.as_ms();
        let full_periods = span / period_ms;
        let mut count = full_periods * self.pos_per_period();
        // Count the ragged remainder by iteration (bounded by POs per period).
        let tail_start = SimInstant::from_ms(from.as_ms() + full_periods * period_ms);
        count += self.iter_from(tail_start).take_while(|&po| po < to).count() as u64;
        count
    }

    /// Infinite iterator over POs starting from the first PO at or after
    /// `from`.
    pub fn iter_from(&self, from: SimInstant) -> PoIter {
        PoIter {
            schedule: *self,
            next: self.first_po_at_or_after(from),
        }
    }

    /// POs of hyperframe-cycle index `m` (eDRX only).
    fn pos_in_ptw(&self, e: EdrxParams, m: u64) -> impl Iterator<Item = SimInstant> {
        let ptw_start_frame =
            (m * e.cycle_hf + e.ph_offset) * FRAMES_PER_HYPERFRAME + e.ptw_start_frame;
        let first = first_multiple_offset(e.ptw_start_frame, self.t_frames, self.pf_offset);
        let t_frames = self.t_frames;
        let po_subframe = self.po_subframe;
        let ptw_frames = e.ptw_frames;
        (0u64..)
            .map(move |i| first + i * t_frames)
            .take_while(move |&off| off < ptw_frames)
            .map(move |off| {
                SimInstant::from_ms((ptw_start_frame + off) * MS_PER_FRAME + po_subframe)
            })
    }
}

/// Smallest `x >= 0` such that `(start + x) mod t == offset`.
#[inline]
fn first_multiple_offset(start: u64, t: u64, offset: u64) -> u64 {
    let rem = start % t;
    if offset >= rem {
        offset - rem
    } else {
        t - (rem - offset)
    }
}

/// Infinite iterator over a device's paging occasions.
///
/// Produced by [`PagingSchedule::iter_from`].
#[derive(Debug, Clone)]
pub struct PoIter {
    schedule: PagingSchedule,
    next: SimInstant,
}

impl Iterator for PoIter {
    type Item = SimInstant;

    fn next(&mut self) -> Option<SimInstant> {
        let current = self.next;
        self.next = self
            .schedule
            .first_po_at_or_after(current + SimDuration::from_ms(1));
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DrxCycle;

    fn drx_schedule(cycle: DrxCycle, ue: u32) -> PagingSchedule {
        PagingSchedule::new(&PagingConfig::drx(cycle), UeId(ue)).unwrap()
    }

    #[test]
    fn drx_po_period_is_cycle_length() {
        let s = drx_schedule(DrxCycle::Rf128, 5);
        let a = s.first_po_at_or_after(SimInstant::ZERO);
        let b = s.first_po_at_or_after(a + SimDuration::from_ms(1));
        assert_eq!((b - a).as_ms(), 1280);
    }

    #[test]
    fn drx_pf_offset_follows_ue_id() {
        // nB = T: N = T, Ns = 1, PF offset = UE_ID mod T, PO subframe 9.
        let s = drx_schedule(DrxCycle::Rf32, 7);
        let po = s.first_po_at_or_after(SimInstant::ZERO);
        assert_eq!(po.frame(), 7);
        assert_eq!(po.subframe_in_frame(), 9);
    }

    #[test]
    fn ue_ids_spread_over_paging_frames() {
        // Different UE ids mod T land on different frames.
        let t0 = drx_schedule(DrxCycle::Rf32, 0).first_po_at_or_after(SimInstant::ZERO);
        let t1 = drx_schedule(DrxCycle::Rf32, 1).first_po_at_or_after(SimInstant::ZERO);
        let t33 = drx_schedule(DrxCycle::Rf32, 33).first_po_at_or_after(SimInstant::ZERO);
        assert_ne!(t0, t1);
        assert_eq!(t1, t33); // 33 mod 32 == 1
    }

    #[test]
    fn ns4_uses_po_subframe_table() {
        let cfg = PagingConfig {
            cycle: PagingCycle::Drx(DrxCycle::Rf32),
            nb: NbParam::FourT,
        };
        // Ns = 4, N = T = 32. i_s = floor(ue/32) mod 4.
        let subframes: Vec<u64> = (0..4)
            .map(|i| {
                let s = PagingSchedule::new(&cfg, UeId(32 * i)).unwrap();
                s.first_po_at_or_after(SimInstant::ZERO).subframe_in_frame()
            })
            .collect();
        assert_eq!(subframes, vec![0, 4, 5, 9]);
    }

    #[test]
    fn ns2_uses_two_po_subframes() {
        let cfg = PagingConfig {
            cycle: PagingCycle::Drx(DrxCycle::Rf64),
            nb: NbParam::TwoT,
        };
        // Ns = 2, N = T = 64, i_s = floor(ue/64) mod 2 -> subframe 4 or 9.
        let s0 = PagingSchedule::new(&cfg, UeId(0)).unwrap();
        let s1 = PagingSchedule::new(&cfg, UeId(64)).unwrap();
        assert_eq!(
            s0.first_po_at_or_after(SimInstant::ZERO)
                .subframe_in_frame(),
            4
        );
        assert_eq!(
            s1.first_po_at_or_after(SimInstant::ZERO)
                .subframe_in_frame(),
            9
        );
    }

    #[test]
    fn ptw_spanning_hyperframes_yields_all_pos() {
        // Hf16 cycle (163.84 s) with the maximum 40.96 s PTW: the window
        // spans 4 hyperframes and must still hold ptw/drx POs.
        let cfg = PagingConfig::edrx_with(
            EdrxCycle::Hf16,
            PtwLength::MAX,  // 4096 frames = 40.96 s
            DrxCycle::Rf256, // 2.56 s in-window DRX
        );
        let s = PagingSchedule::new(&cfg, UeId(123)).unwrap();
        assert_eq!(s.pos_per_period(), 16); // 4096 / 256
        let w = TimeWindow::new(SimInstant::ZERO, SimInstant::from_secs(164));
        let pos = s.pos_in(w);
        assert_eq!(pos.len(), 16);
        // All POs lie within one 40.96 s span.
        let span = *pos.last().unwrap() - pos[0];
        assert!(span.as_ms() < 40_960, "span {span}");
    }

    #[test]
    fn nb_less_than_t_coalesces_paging_frames() {
        let cfg = PagingConfig {
            cycle: PagingCycle::Drx(DrxCycle::Rf256),
            nb: NbParam::QuarterT,
        };
        // N = 64 -> PF offset multiples of (T div N) = 4 frames.
        let s = PagingSchedule::new(&cfg, UeId(3)).unwrap();
        let po = s.first_po_at_or_after(SimInstant::ZERO);
        assert_eq!(po.frame() % 4, 0);
        assert_eq!(po.frame(), 12); // (256/64) * (3 mod 64)
    }

    #[test]
    fn last_po_before_is_dual_of_first_after() {
        let s = drx_schedule(DrxCycle::Rf64, 11);
        let t = SimInstant::from_secs(100);
        let before = s.last_po_before(t).unwrap();
        let after = s.first_po_at_or_after(t);
        assert!(before < t && t <= after);
        assert_eq!((after - before).as_ms(), 640);
    }

    #[test]
    fn last_po_before_epoch_is_none() {
        let s = drx_schedule(DrxCycle::Rf64, 11);
        assert_eq!(s.last_po_before(SimInstant::ZERO), None);
        // And before the very first PO there is also nothing.
        let first = s.first_po_at_or_after(SimInstant::ZERO);
        assert_eq!(s.last_po_before(first), None);
    }

    #[test]
    fn edrx_one_po_per_cycle_with_min_ptw() {
        let s = PagingSchedule::new(&PagingConfig::edrx(EdrxCycle::Hf2), UeId(3)).unwrap();
        assert_eq!(s.pos_per_period(), 1);
        let a = s.first_po_at_or_after(SimInstant::ZERO);
        let b = s.first_po_at_or_after(a + SimDuration::from_ms(1));
        assert_eq!((b - a).as_ms(), 20_480);
    }

    #[test]
    fn edrx_ptw_lands_in_paging_hyperframe() {
        let ue = UeId(5);
        let s = PagingSchedule::new(&PagingConfig::edrx(EdrxCycle::Hf4), ue).unwrap();
        let po = s.first_po_at_or_after(SimInstant::ZERO);
        // PH: H-SFN mod 4 == 5 mod 4 == 1; i_eDRX = (5/4) mod 4 = 1 ->
        // PTW starts at SFN 256 of hyperframe 1.
        assert_eq!(po.hyperframe() % 4, 1);
        assert!(po.sfn() >= 256 && po.sfn() < 256 + 256);
    }

    #[test]
    fn edrx_multiple_pos_with_long_ptw() {
        let cfg = PagingConfig::edrx_with(
            EdrxCycle::Hf2,
            PtwLength::new(4).unwrap(), // 10.24 s window
            DrxCycle::Rf128,            // 1.28 s in-window DRX
        );
        let s = PagingSchedule::new(&cfg, UeId(9)).unwrap();
        assert_eq!(s.pos_per_period(), 8); // 1024 frames / 128
        let w = TimeWindow::new(SimInstant::ZERO, SimInstant::from_secs(21));
        assert_eq!(s.pos_in(w).len(), 8);
    }

    #[test]
    fn invalid_ptw_vs_drx_rejected() {
        let cfg = PagingConfig::edrx_with(EdrxCycle::Hf2, PtwLength::MIN, DrxCycle::Rf256);
        assert!(cfg.validate().is_ok());
        // PTW of 2.56 s always fits every DRX <= 2.56 s; force a failure via
        // direct construction of an inconsistent config is impossible with
        // standard values, so validate() is exercised through the Ok path
        // and the error is covered in crate::error tests.
        let s = PagingSchedule::new(&cfg, UeId(1)).unwrap();
        assert_eq!(s.pos_per_period(), 1);
    }

    #[test]
    fn count_pos_between_matches_iteration() {
        for (cfg, ue) in [
            (PagingConfig::drx(DrxCycle::Rf32), 17u32),
            (PagingConfig::drx(DrxCycle::Rf256), 3),
            (PagingConfig::edrx(EdrxCycle::Hf2), 40),
            (
                PagingConfig::edrx_with(
                    EdrxCycle::Hf4,
                    PtwLength::new(2).unwrap(),
                    DrxCycle::Rf128,
                ),
                11,
            ),
        ] {
            let s = PagingSchedule::new(&cfg, UeId(ue)).unwrap();
            let from = SimInstant::from_secs(13);
            let to = SimInstant::from_secs(130);
            let counted = s.count_pos_between(from, to);
            let iterated = s.iter_from(from).take_while(|&p| p < to).count() as u64;
            assert_eq!(counted, iterated, "cfg {cfg:?}");
        }
    }

    #[test]
    fn has_po_in_empty_window_is_false() {
        let s = drx_schedule(DrxCycle::Rf32, 0);
        let t = SimInstant::from_secs(5);
        assert!(!s.has_po_in(TimeWindow::new(t, t)));
    }

    #[test]
    fn po_iter_is_strictly_increasing() {
        let s = PagingSchedule::new(&PagingConfig::edrx(EdrxCycle::Hf2), UeId(123)).unwrap();
        let pos: Vec<_> = s.iter_from(SimInstant::ZERO).take(5).collect();
        for w in pos.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn first_multiple_offset_cases() {
        assert_eq!(first_multiple_offset(0, 8, 3), 3);
        assert_eq!(first_multiple_offset(5, 8, 3), 6); // 5+6=11, 11 mod 8 = 3
        assert_eq!(first_multiple_offset(11, 8, 3), 0); // 11 mod 8 == 3
    }
}
