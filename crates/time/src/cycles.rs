//! (e)DRX cycle values and the power-of-two cycle ladder.
//!
//! 3GPP defines idle-mode DRX cycles of 0.32–2.56 s (TS 36.331
//! `defaultPagingCycle`: rf32..rf256) and, for NB-IoT, extended DRX (eDRX)
//! cycles of 20.48 s–10 485.76 s (TS 36.304 §7.3, expressed in hyperframes).
//! As the paper notes (Sec. II-B), every value is exactly twice the
//! immediately shorter value; the DA-SC mechanism exploits this so that
//! *shrinking* a device's cycle preserves its original PO periodicity.

use core::fmt;

use crate::{SimDuration, TimeError};

/// Idle-mode DRX paging cycle (TS 36.331 `defaultPagingCycle`).
///
/// The variant names follow the 3GPP "rfN" notation: the cycle length in
/// radio frames (10 ms each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DrxCycle {
    /// 0.32 s (32 radio frames).
    Rf32,
    /// 0.64 s (64 radio frames).
    Rf64,
    /// 1.28 s (128 radio frames).
    Rf128,
    /// 2.56 s (256 radio frames).
    Rf256,
}

impl DrxCycle {
    /// All DRX cycles, shortest first.
    pub const ALL: [DrxCycle; 4] = [
        DrxCycle::Rf32,
        DrxCycle::Rf64,
        DrxCycle::Rf128,
        DrxCycle::Rf256,
    ];

    /// Cycle length in radio frames.
    #[inline]
    pub const fn frames(self) -> u64 {
        match self {
            DrxCycle::Rf32 => 32,
            DrxCycle::Rf64 => 64,
            DrxCycle::Rf128 => 128,
            DrxCycle::Rf256 => 256,
        }
    }

    /// Cycle length as a duration.
    #[inline]
    pub const fn duration(self) -> SimDuration {
        SimDuration::from_frames(self.frames())
    }

    /// The cycle with the given length in radio frames, if it is a standard
    /// value.
    pub const fn from_frames(frames: u64) -> Option<DrxCycle> {
        match frames {
            32 => Some(DrxCycle::Rf32),
            64 => Some(DrxCycle::Rf64),
            128 => Some(DrxCycle::Rf128),
            256 => Some(DrxCycle::Rf256),
            _ => None,
        }
    }
}

impl fmt::Display for DrxCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DRX {:.2}s", self.duration().as_secs_f64())
    }
}

/// Extended DRX cycle (TS 36.304 §7.3), expressed in hyperframes
/// (1 hyperframe = 10.24 s).
///
/// NB-IoT supports 20.48 s (2 hyperframes) up to 10 485.76 s
/// (1024 hyperframes, ≈175 min — the "175 minutes" of the paper's Sec. II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EdrxCycle {
    /// 20.48 s (2 hyperframes).
    Hf2,
    /// 40.96 s.
    Hf4,
    /// 81.92 s.
    Hf8,
    /// 163.84 s.
    Hf16,
    /// 327.68 s.
    Hf32,
    /// 655.36 s.
    Hf64,
    /// 1310.72 s.
    Hf128,
    /// 2621.44 s (≈44 min).
    Hf256,
    /// 5242.88 s (≈87 min).
    Hf512,
    /// 10485.76 s (≈175 min).
    Hf1024,
}

impl EdrxCycle {
    /// All eDRX cycles, shortest first.
    pub const ALL: [EdrxCycle; 10] = [
        EdrxCycle::Hf2,
        EdrxCycle::Hf4,
        EdrxCycle::Hf8,
        EdrxCycle::Hf16,
        EdrxCycle::Hf32,
        EdrxCycle::Hf64,
        EdrxCycle::Hf128,
        EdrxCycle::Hf256,
        EdrxCycle::Hf512,
        EdrxCycle::Hf1024,
    ];

    /// Cycle length in hyperframes.
    #[inline]
    pub const fn hyperframes(self) -> u64 {
        match self {
            EdrxCycle::Hf2 => 2,
            EdrxCycle::Hf4 => 4,
            EdrxCycle::Hf8 => 8,
            EdrxCycle::Hf16 => 16,
            EdrxCycle::Hf32 => 32,
            EdrxCycle::Hf64 => 64,
            EdrxCycle::Hf128 => 128,
            EdrxCycle::Hf256 => 256,
            EdrxCycle::Hf512 => 512,
            EdrxCycle::Hf1024 => 1024,
        }
    }

    /// Cycle length in radio frames.
    #[inline]
    pub const fn frames(self) -> u64 {
        self.hyperframes() * crate::sfn::FRAMES_PER_HYPERFRAME
    }

    /// Cycle length as a duration.
    #[inline]
    pub const fn duration(self) -> SimDuration {
        SimDuration::from_frames(self.frames())
    }

    /// The cycle with the given length in hyperframes, if standard.
    pub const fn from_hyperframes(hf: u64) -> Option<EdrxCycle> {
        match hf {
            2 => Some(EdrxCycle::Hf2),
            4 => Some(EdrxCycle::Hf4),
            8 => Some(EdrxCycle::Hf8),
            16 => Some(EdrxCycle::Hf16),
            32 => Some(EdrxCycle::Hf32),
            64 => Some(EdrxCycle::Hf64),
            128 => Some(EdrxCycle::Hf128),
            256 => Some(EdrxCycle::Hf256),
            512 => Some(EdrxCycle::Hf512),
            1024 => Some(EdrxCycle::Hf1024),
            _ => None,
        }
    }
}

impl fmt::Display for EdrxCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eDRX {:.2}s", self.duration().as_secs_f64())
    }
}

/// Paging time window length for eDRX (TS 36.304 §7.3): 1–16 units of
/// 2.56 s (256 radio frames) each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PtwLength(u8);

impl PtwLength {
    /// The shortest PTW: one 2.56 s unit.
    pub const MIN: PtwLength = PtwLength(1);
    /// The longest PTW: sixteen units, 40.96 s.
    pub const MAX: PtwLength = PtwLength(16);

    /// Creates a PTW length of `units` 2.56 s units.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::InvalidPtw`] when `units` is not in `1..=16`.
    pub fn new(units: u8) -> Result<PtwLength, TimeError> {
        if (1..=16).contains(&units) {
            Ok(PtwLength(units))
        } else {
            Err(TimeError::InvalidPtw { units })
        }
    }

    /// Number of 2.56 s units.
    #[inline]
    pub const fn units(self) -> u8 {
        self.0
    }

    /// Window length in radio frames.
    #[inline]
    pub const fn frames(self) -> u64 {
        self.0 as u64 * 256
    }

    /// Window length as a duration.
    #[inline]
    pub const fn duration(self) -> SimDuration {
        SimDuration::from_frames(self.frames())
    }
}

impl Default for PtwLength {
    fn default() -> Self {
        PtwLength::MIN
    }
}

impl fmt::Display for PtwLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PTW {:.2}s", self.duration().as_secs_f64())
    }
}

/// A paging cycle: either regular DRX or extended DRX with a paging time
/// window.
///
/// For eDRX the device still monitors paging occasions according to a
/// regular DRX cycle, but only inside the paging time window of each eDRX
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PagingCycle {
    /// Regular DRX: one PO per cycle.
    Drx(DrxCycle),
    /// Extended DRX: paging occasions per `ptw_drx` inside each paging time
    /// window.
    Edrx {
        /// eDRX cycle length.
        cycle: EdrxCycle,
        /// Paging time window length.
        ptw: PtwLength,
        /// DRX cycle the device follows inside the PTW.
        ptw_drx: DrxCycle,
    },
}

impl PagingCycle {
    /// A convenience eDRX cycle with the shortest PTW and 2.56 s in-window
    /// DRX, which yields exactly one PO per eDRX cycle — the abstraction the
    /// paper uses.
    pub const fn edrx(cycle: EdrxCycle) -> PagingCycle {
        PagingCycle::Edrx {
            cycle,
            ptw: PtwLength(1),
            ptw_drx: DrxCycle::Rf256,
        }
    }

    /// Full period after which the PO pattern repeats, in radio frames.
    #[inline]
    pub const fn period_frames(self) -> u64 {
        match self {
            PagingCycle::Drx(d) => d.frames(),
            PagingCycle::Edrx { cycle, .. } => cycle.frames(),
        }
    }

    /// Full period after which the PO pattern repeats.
    #[inline]
    pub const fn period(self) -> SimDuration {
        SimDuration::from_frames(self.period_frames())
    }

    /// `true` for extended DRX.
    #[inline]
    pub const fn is_edrx(self) -> bool {
        matches!(self, PagingCycle::Edrx { .. })
    }
}

impl fmt::Display for PagingCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagingCycle::Drx(d) => d.fmt(f),
            PagingCycle::Edrx { cycle, ptw, .. } => write!(f, "{cycle} ({ptw})"),
        }
    }
}

impl From<DrxCycle> for PagingCycle {
    fn from(d: DrxCycle) -> Self {
        PagingCycle::Drx(d)
    }
}

/// The full ladder of standard cycle lengths, shortest first, mixing DRX and
/// eDRX values.
///
/// DA-SC walks this ladder downwards to find the *largest* cycle that puts a
/// PO inside the pre-transmission window, minimizing the energy cost of the
/// adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleLadder;

impl CycleLadder {
    /// All standard cycle lengths in radio frames, ascending.
    pub const FRAMES: [u64; 14] = [
        32, 64, 128, 256, // DRX
        2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576, // eDRX
    ];

    /// All standard cycles as [`PagingCycle`] values, ascending by length.
    pub fn cycles() -> impl DoubleEndedIterator<Item = PagingCycle> {
        DrxCycle::ALL
            .iter()
            .map(|&d| PagingCycle::Drx(d))
            .chain(EdrxCycle::ALL.iter().map(|&e| PagingCycle::edrx(e)))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// The standard cycle with exactly `frames` radio frames, if any.
    pub fn from_frames(frames: u64) -> Option<PagingCycle> {
        if let Some(d) = DrxCycle::from_frames(frames) {
            return Some(PagingCycle::Drx(d));
        }
        if frames.is_multiple_of(crate::sfn::FRAMES_PER_HYPERFRAME) {
            if let Some(e) = EdrxCycle::from_hyperframes(frames / crate::sfn::FRAMES_PER_HYPERFRAME)
            {
                return Some(PagingCycle::edrx(e));
            }
        }
        None
    }

    /// The next shorter standard cycle, if one exists.
    ///
    /// # Example
    ///
    /// ```
    /// use nbiot_time::{CycleLadder, DrxCycle, EdrxCycle, PagingCycle};
    ///
    /// let shorter = CycleLadder::next_shorter(PagingCycle::edrx(EdrxCycle::Hf2));
    /// assert_eq!(shorter, Some(PagingCycle::Drx(DrxCycle::Rf256)));
    /// assert_eq!(CycleLadder::next_shorter(PagingCycle::Drx(DrxCycle::Rf32)), None);
    /// ```
    pub fn next_shorter(cycle: PagingCycle) -> Option<PagingCycle> {
        let frames = cycle.period_frames();
        Self::FRAMES
            .iter()
            .rev()
            .find(|&&f| f < frames)
            .and_then(|&f| Self::from_frames(f))
    }

    /// The next longer standard cycle, if one exists.
    pub fn next_longer(cycle: PagingCycle) -> Option<PagingCycle> {
        let frames = cycle.period_frames();
        Self::FRAMES
            .iter()
            .find(|&&f| f > frames)
            .and_then(|&f| Self::from_frames(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cycle_is_twice_the_previous() {
        // The paper's Sec. II-B property, within each of the two families.
        for w in DrxCycle::ALL.windows(2) {
            assert_eq!(w[1].frames(), 2 * w[0].frames());
        }
        for w in EdrxCycle::ALL.windows(2) {
            assert_eq!(w[1].frames(), 2 * w[0].frames());
        }
        for w in CycleLadder::FRAMES.windows(2) {
            assert!(w[1] == 2 * w[0] || (w[0] == 256 && w[1] == 2048));
        }
    }

    #[test]
    fn drx_durations_match_standard() {
        assert_eq!(DrxCycle::Rf32.duration().as_ms(), 320);
        assert_eq!(DrxCycle::Rf256.duration().as_ms(), 2560);
    }

    #[test]
    fn edrx_range_matches_paper() {
        // 20.48 s .. 10485.76 s ("20.48 seconds to 175 minutes").
        assert_eq!(EdrxCycle::Hf2.duration().as_ms(), 20_480);
        assert_eq!(EdrxCycle::Hf1024.duration().as_ms(), 10_485_760);
        let minutes = EdrxCycle::Hf1024.duration().as_secs_f64() / 60.0;
        assert!((174.0..176.0).contains(&minutes));
    }

    #[test]
    fn from_frames_round_trips() {
        for d in DrxCycle::ALL {
            assert_eq!(DrxCycle::from_frames(d.frames()), Some(d));
        }
        for e in EdrxCycle::ALL {
            assert_eq!(EdrxCycle::from_hyperframes(e.hyperframes()), Some(e));
        }
        assert_eq!(DrxCycle::from_frames(100), None);
        assert_eq!(EdrxCycle::from_hyperframes(3), None);
    }

    #[test]
    fn ladder_round_trips_all_values() {
        for f in CycleLadder::FRAMES {
            let c = CycleLadder::from_frames(f).expect("standard value");
            assert_eq!(c.period_frames(), f);
        }
        assert_eq!(CycleLadder::from_frames(999), None);
    }

    #[test]
    fn ladder_navigation() {
        let c = CycleLadder::from_frames(2048).unwrap();
        assert_eq!(
            CycleLadder::next_shorter(c).map(|c| c.period_frames()),
            Some(256)
        );
        assert_eq!(
            CycleLadder::next_longer(c).map(|c| c.period_frames()),
            Some(4096)
        );
        let longest = CycleLadder::from_frames(1048576).unwrap();
        assert_eq!(CycleLadder::next_longer(longest), None);
    }

    #[test]
    fn ptw_validation() {
        assert!(PtwLength::new(0).is_err());
        assert!(PtwLength::new(17).is_err());
        assert_eq!(PtwLength::new(16).unwrap(), PtwLength::MAX);
        assert_eq!(PtwLength::MIN.duration().as_ms(), 2560);
        assert_eq!(PtwLength::MAX.duration().as_ms(), 40_960);
    }

    #[test]
    fn edrx_convenience_has_single_po_per_cycle() {
        let c = PagingCycle::edrx(EdrxCycle::Hf2);
        match c {
            PagingCycle::Edrx { ptw, ptw_drx, .. } => {
                // One 2.56 s PTW holding exactly one 2.56 s DRX cycle.
                assert_eq!(ptw.frames(), ptw_drx.frames());
            }
            PagingCycle::Drx(_) => panic!("expected eDRX"),
        }
    }

    #[test]
    fn ladder_cycles_are_sorted_ascending() {
        let lens: Vec<u64> = CycleLadder::cycles().map(|c| c.period_frames()).collect();
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        assert_eq!(lens, sorted);
        assert_eq!(lens.len(), CycleLadder::FRAMES.len());
    }
}
