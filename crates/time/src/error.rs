//! Error types for timing and paging configuration.

use core::fmt;

/// Errors produced when validating timing or paging configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimeError {
    /// A paging time window length outside `1..=16` units was requested.
    InvalidPtw {
        /// The rejected number of 2.56 s units.
        units: u8,
    },
    /// The `nB` parameter would yield more than 4 paging occasions per
    /// paging frame, which TS 36.304 does not define.
    UnsupportedNb {
        /// The rejected `nB` numerator (in units of `T/32`).
        nb_over_t_32: u32,
    },
    /// The paging time window does not fit the in-window DRX cycle (it would
    /// contain no paging occasion).
    PtwShorterThanDrx {
        /// PTW length in frames.
        ptw_frames: u64,
        /// In-window DRX cycle length in frames.
        drx_frames: u64,
    },
    /// The paging time window is longer than the eDRX cycle, so consecutive
    /// windows would overlap.
    PtwLongerThanCycle {
        /// PTW length in frames.
        ptw_frames: u64,
        /// eDRX cycle length in frames.
        cycle_frames: u64,
    },
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::InvalidPtw { units } => {
                write!(f, "paging time window of {units} units is outside 1..=16")
            }
            TimeError::UnsupportedNb { nb_over_t_32 } => {
                write!(
                    f,
                    "nB of {}/32 T yields more than 4 paging occasions per frame",
                    nb_over_t_32
                )
            }
            TimeError::PtwShorterThanDrx {
                ptw_frames,
                drx_frames,
            } => write!(
                f,
                "paging time window of {ptw_frames} frames cannot hold a PO of a {drx_frames}-frame DRX cycle"
            ),
            TimeError::PtwLongerThanCycle {
                ptw_frames,
                cycle_frames,
            } => write!(
                f,
                "paging time window of {ptw_frames} frames exceeds the {cycle_frames}-frame eDRX cycle"
            ),
        }
    }
}

impl std::error::Error for TimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            TimeError::InvalidPtw { units: 0 }.to_string(),
            TimeError::UnsupportedNb { nb_over_t_32: 256 }.to_string(),
            TimeError::PtwShorterThanDrx {
                ptw_frames: 10,
                drx_frames: 256,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }
}
