//! NB-IoT radio timing primitives.
//!
//! This crate models the 3GPP time base used by every other crate in the
//! workspace:
//!
//! * [`SimInstant`] / [`SimDuration`] — absolute simulation time and spans,
//!   with 1 ms (one LTE subframe) resolution,
//! * radio frames (10 ms), the System Frame Number ([`Sfn`], wraps at 1024)
//!   and hyperframes ([`HyperSfn`], 1024 frames = 10.24 s),
//! * [`DrxCycle`] (0.32 s – 2.56 s) and [`EdrxCycle`] (20.48 s – 10 485.76 s)
//!   discontinuous-reception cycles, where each value is exactly twice the
//!   immediately shorter one (the property the DA-SC mechanism of the paper
//!   relies on),
//! * the paging-frame / paging-occasion computation of 3GPP TS 36.304 §7
//!   ([`PagingSchedule`]), including eDRX paging hyperframes and paging time
//!   windows,
//! * [`TimeWindow`] — half-open `[start, end)` windows used by the grouping
//!   mechanisms to reason about inactivity-timer (`TI`) coverage.
//!
//! # Example
//!
//! ```
//! use nbiot_time::{DrxCycle, PagingConfig, PagingSchedule, SimInstant, UeId};
//!
//! let cfg = PagingConfig::drx(DrxCycle::Rf128); // 1.28 s cycle
//! let schedule = PagingSchedule::new(&cfg, UeId(42)).expect("valid config");
//! let first = schedule.first_po_at_or_after(SimInstant::ZERO);
//! let second = schedule.first_po_at_or_after(first + nbiot_time::SimDuration::from_ms(1));
//! assert_eq!((second - first).as_ms(), 1280);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycles;
mod error;
mod instant;
mod paging;
mod sfn;
mod window;

pub use cycles::{CycleLadder, DrxCycle, EdrxCycle, PagingCycle, PtwLength};
pub use error::TimeError;
pub use instant::{SimDuration, SimInstant, MS_PER_FRAME, MS_PER_SUBFRAME, SUBFRAMES_PER_FRAME};
pub use paging::{NbParam, PagingConfig, PagingSchedule, PoIter, UeId};
pub use sfn::{FrameNumber, HyperSfn, Sfn, FRAMES_PER_HYPERFRAME, SFN_PERIOD};
pub use window::TimeWindow;
