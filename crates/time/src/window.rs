//! Half-open time windows.

use core::fmt;

use crate::{SimDuration, SimInstant};

/// A half-open window of simulation time, `[start, end)`.
///
/// The grouping mechanisms use windows of inactivity-timer length (`TI`) to
/// decide which devices a single multicast transmission can cover (paper
/// Fig. 2): a transmission at the window end reaches every device with a PO
/// inside the window, because none of those devices' inactivity timers has
/// expired yet.
///
/// # Example
///
/// ```
/// use nbiot_time::{SimDuration, SimInstant, TimeWindow};
///
/// let ti = SimDuration::from_secs(20);
/// let w = TimeWindow::ending_at(SimInstant::from_secs(100), ti);
/// assert!(w.contains(SimInstant::from_secs(80)));
/// assert!(w.contains(SimInstant::from_secs(99)));
/// assert!(!w.contains(SimInstant::from_secs(100))); // half-open
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeWindow {
    start: SimInstant,
    end: SimInstant,
}

impl TimeWindow {
    /// Creates the window `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when `end < start`.
    pub fn new(start: SimInstant, end: SimInstant) -> TimeWindow {
        assert!(end >= start, "window end {end} precedes start {start}");
        TimeWindow { start, end }
    }

    /// Creates the window `[start, start + len)`.
    pub fn starting_at(start: SimInstant, len: SimDuration) -> TimeWindow {
        TimeWindow {
            start,
            end: start + len,
        }
    }

    /// Creates the window `[end - len, end)`, clamping the start at the
    /// epoch.
    pub fn ending_at(end: SimInstant, len: SimDuration) -> TimeWindow {
        TimeWindow {
            start: end.saturating_sub(len),
            end,
        }
    }

    /// Window start (inclusive).
    #[inline]
    pub fn start(self) -> SimInstant {
        self.start
    }

    /// Window end (exclusive).
    #[inline]
    pub fn end(self) -> SimInstant {
        self.end
    }

    /// Window length.
    #[inline]
    pub fn len(self) -> SimDuration {
        self.end - self.start
    }

    /// `true` when the window contains no instant.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether `t` lies inside the window.
    #[inline]
    pub fn contains(self, t: SimInstant) -> bool {
        self.start <= t && t < self.end
    }

    /// The overlap of two windows, or `None` when they are disjoint.
    pub fn intersect(self, other: TimeWindow) -> Option<TimeWindow> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeWindow { start, end })
        } else {
            None
        }
    }

    /// Shifts the whole window later by `d`.
    pub fn shifted(self, d: SimDuration) -> TimeWindow {
        TimeWindow {
            start: self.start + d,
            end: self.end + d,
        }
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_half_open() {
        let w = TimeWindow::new(SimInstant::from_ms(10), SimInstant::from_ms(20));
        assert!(w.contains(SimInstant::from_ms(10)));
        assert!(w.contains(SimInstant::from_ms(19)));
        assert!(!w.contains(SimInstant::from_ms(20)));
        assert!(!w.contains(SimInstant::from_ms(9)));
    }

    #[test]
    fn ending_at_clamps_at_epoch() {
        let w = TimeWindow::ending_at(SimInstant::from_ms(5), SimDuration::from_ms(10));
        assert_eq!(w.start(), SimInstant::ZERO);
        assert_eq!(w.len(), SimDuration::from_ms(5));
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn reversed_window_panics() {
        let _ = TimeWindow::new(SimInstant::from_ms(2), SimInstant::from_ms(1));
    }

    #[test]
    fn empty_window_contains_nothing() {
        let t = SimInstant::from_ms(7);
        let w = TimeWindow::new(t, t);
        assert!(w.is_empty());
        assert!(!w.contains(t));
    }

    #[test]
    fn intersection() {
        let a = TimeWindow::new(SimInstant::from_ms(0), SimInstant::from_ms(10));
        let b = TimeWindow::new(SimInstant::from_ms(5), SimInstant::from_ms(15));
        let c = a.intersect(b).unwrap();
        assert_eq!(c.start(), SimInstant::from_ms(5));
        assert_eq!(c.end(), SimInstant::from_ms(10));
        let d = TimeWindow::new(SimInstant::from_ms(20), SimInstant::from_ms(30));
        assert_eq!(a.intersect(d), None);
        // Touching windows are disjoint (half-open semantics).
        let e = TimeWindow::new(SimInstant::from_ms(10), SimInstant::from_ms(20));
        assert_eq!(a.intersect(e), None);
    }

    #[test]
    fn shifting_preserves_length() {
        let w = TimeWindow::starting_at(SimInstant::from_ms(3), SimDuration::from_ms(4));
        let s = w.shifted(SimDuration::from_ms(10));
        assert_eq!(s.start(), SimInstant::from_ms(13));
        assert_eq!(s.len(), w.len());
    }
}
