//! Device-class mixes.

use core::fmt;

use rand::Rng;

use nbiot_phy::CoverageClass;
use nbiot_time::{DrxCycle, EdrxCycle, PagingConfig, PagingCycle, SimDuration, UeId};

use crate::{ClassId, DeviceId, DeviceProfile, Population, TrafficError};

/// One device class of a traffic mix: a population share, a distribution of
/// paging cycles, and a background uplink reporting interval.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassSpec {
    /// Human-readable class name (e.g. `electricity-meter`).
    pub name: String,
    /// Relative share of the population (normalized across the mix).
    pub share: f64,
    /// Weighted paging-cycle options for devices of this class.
    pub cycles: Vec<(PagingCycle, f64)>,
    /// Mean interval between background uplink reports.
    pub report_interval: SimDuration,
    /// Coverage-enhancement class of this device class — a property of
    /// where the model gets installed (basement meters sit in CE1/CE2,
    /// street-level infrastructure in CE0), not a per-device draw, so
    /// adding it leaves generated populations numerically unchanged.
    pub coverage: CoverageClass,
}

impl ClassSpec {
    /// Creates a class with a single paging cycle in normal (CE0)
    /// coverage.
    pub fn new(
        name: impl Into<String>,
        share: f64,
        cycle: PagingCycle,
        report_interval: SimDuration,
    ) -> ClassSpec {
        ClassSpec {
            name: name.into(),
            share,
            cycles: vec![(cycle, 1.0)],
            report_interval,
            coverage: CoverageClass::default(),
        }
    }

    /// Returns the class with its coverage-enhancement class replaced.
    #[must_use]
    pub fn with_coverage(mut self, coverage: CoverageClass) -> ClassSpec {
        self.coverage = coverage;
        self
    }

    fn validate(&self) -> Result<(), TrafficError> {
        if self.share <= 0.0 {
            return Err(TrafficError::NonPositiveWeight {
                class: self.name.clone(),
            });
        }
        if self.cycles.is_empty() {
            return Err(TrafficError::NoCycles {
                class: self.name.clone(),
            });
        }
        for (cycle, w) in &self.cycles {
            if *w <= 0.0 {
                return Err(TrafficError::NonPositiveWeight {
                    class: self.name.clone(),
                });
            }
            PagingConfig {
                cycle: *cycle,
                nb: Default::default(),
            }
            .validate()?;
        }
        Ok(())
    }

    fn sample_cycle<R: Rng + ?Sized>(&self, rng: &mut R) -> PagingCycle {
        let total: f64 = self.cycles.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for (cycle, w) in &self.cycles {
            if x < *w {
                return *cycle;
            }
            x -= w;
        }
        self.cycles.last().expect("validated non-empty").0
    }
}

/// A weighted collection of device classes describing a cell's population.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrafficMix {
    /// Mix name, for reporting.
    pub name: String,
    classes: Vec<ClassSpec>,
}

impl TrafficMix {
    /// Creates a mix from explicit classes.
    ///
    /// # Errors
    ///
    /// Returns a [`TrafficError`] when the class list is empty or any class
    /// is invalid.
    pub fn new(
        name: impl Into<String>,
        classes: Vec<ClassSpec>,
    ) -> Result<TrafficMix, TrafficError> {
        if classes.is_empty() {
            return Err(TrafficError::EmptyMix);
        }
        for c in &classes {
            c.validate()?;
        }
        Ok(TrafficMix {
            name: name.into(),
            classes,
        })
    }

    /// The classes of this mix.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// The city-scale massive-IoT mix used as the default experiment
    /// population, modelled after the device categories of the Ericsson
    /// *Massive IoT in the City* white paper the evaluation section cites.
    ///
    /// The mix is bimodal, as a city deployment is: commandable
    /// infrastructure (street lights, alarm panels, asset trackers) sits on
    /// short reachability-oriented cycles (2.56 s DRX to 40.96 s eDRX),
    /// while battery-for-a-decade metering — the bulk of the population —
    /// sleeps on the longest eDRX cycles (87 min to 175 min). The exact
    /// shares were calibrated so that the DR-SC transmission curve
    /// reproduces the shape of the paper's Fig. 7 (≈50 % of N at N = 100
    /// declining to ≈40 % at N = 1000); the calibration sweep is preserved
    /// in `nbiot-bench --bin calibrate` and documented in EXPERIMENTS.md.
    pub fn ericsson_city() -> TrafficMix {
        let h = SimDuration::from_secs(3600);
        TrafficMix::new(
            "ericsson-city",
            vec![
                ClassSpec::new(
                    "street-light",
                    0.22,
                    PagingCycle::edrx(EdrxCycle::Hf2), // 20.48 s
                    h * 24,
                ),
                ClassSpec::new(
                    "alarm-actuator",
                    0.09,
                    PagingCycle::Drx(DrxCycle::Rf256), // 2.56 s
                    h * 24,
                ),
                ClassSpec::new(
                    "asset-tracker",
                    0.11,
                    PagingCycle::edrx(EdrxCycle::Hf4), // 40.96 s
                    SimDuration::from_secs(900),
                ),
                ClassSpec::new(
                    "environment-sensor",
                    0.05,
                    PagingCycle::edrx(EdrxCycle::Hf512), // 5242.88 s
                    h,
                ),
                ClassSpec::new(
                    "electricity-meter",
                    0.27,
                    PagingCycle::edrx(EdrxCycle::Hf1024), // 10485.76 s
                    h * 24,
                ),
                ClassSpec::new(
                    "water-meter",
                    0.17,
                    PagingCycle::edrx(EdrxCycle::Hf1024),
                    h * 24,
                ),
                ClassSpec::new(
                    "gas-meter",
                    0.09,
                    PagingCycle::edrx(EdrxCycle::Hf1024),
                    h * 24,
                ),
            ],
        )
        .expect("built-in mix is valid")
    }

    /// A clustered, heterogeneous mix: the population is dominated by a
    /// few tight device clusters, each with its *own* internal cycle
    /// spread, modelling NOMA-style user clustering (Shahini & Ansari,
    /// *NOMA Aided Narrowband IoT for MTC with User Clustering*). Unlike
    /// `ericsson-city`'s smooth bimodal shape, the clusters put large
    /// same-cycle cohorts on the grouping mechanisms — the regime where
    /// frame-level set cover either collapses to a handful of
    /// transmissions or fragments badly.
    pub fn clustered_heterogeneous() -> TrafficMix {
        let h = SimDuration::from_secs(3600);
        TrafficMix::new(
            "clustered-heterogeneous",
            vec![
                // Cluster A: dense metering block on one long cycle with a
                // thin spill-over into the neighbouring cycle.
                ClassSpec {
                    name: "meter-cluster".into(),
                    share: 0.45,
                    cycles: vec![
                        (PagingCycle::edrx(EdrxCycle::Hf512), 0.85),
                        (PagingCycle::edrx(EdrxCycle::Hf1024), 0.15),
                    ],
                    report_interval: h * 24,
                    coverage: CoverageClass::Normal,
                },
                // Cluster B: mid-cycle tracker fleet, internally split
                // between two adjacent eDRX settings.
                ClassSpec {
                    name: "tracker-cluster".into(),
                    share: 0.3,
                    cycles: vec![
                        (PagingCycle::edrx(EdrxCycle::Hf16), 0.6),
                        (PagingCycle::edrx(EdrxCycle::Hf32), 0.4),
                    ],
                    report_interval: SimDuration::from_secs(900),
                    coverage: CoverageClass::Normal,
                },
                // Cluster C: reachability cohort on short regular DRX.
                ClassSpec {
                    name: "actuator-cluster".into(),
                    share: 0.2,
                    cycles: vec![
                        (PagingCycle::Drx(DrxCycle::Rf128), 0.5),
                        (PagingCycle::Drx(DrxCycle::Rf256), 0.5),
                    ],
                    report_interval: h * 24,
                    coverage: CoverageClass::Normal,
                },
                // A thin unclustered tail keeps the instance from being
                // perfectly coverable by three windows.
                ClassSpec {
                    name: "stragglers".into(),
                    share: 0.05,
                    cycles: vec![
                        (PagingCycle::edrx(EdrxCycle::Hf128), 0.5),
                        (PagingCycle::edrx(EdrxCycle::Hf256), 0.5),
                    ],
                    report_interval: h,
                    coverage: CoverageClass::Normal,
                },
            ],
        )
        .expect("built-in mix is valid")
    }

    /// A bursty alarm-dominated mix: most of the population are alarm
    /// panels and sirens on short reachability cycles that all become
    /// pageable nearly simultaneously — the synchronized-access regime of
    /// grouping-based RACH collision control (Han & Schotten,
    /// *Grouping-Based Random Access Collision Control for Massive MTC*).
    /// Combine with a raised `ra_contenders` simulation setting to stress
    /// random access under a correlated burst.
    pub fn bursty_alarm() -> TrafficMix {
        let h = SimDuration::from_secs(3600);
        TrafficMix::new(
            "bursty-alarm",
            vec![
                ClassSpec::new(
                    "alarm-panel",
                    0.40,
                    PagingCycle::Drx(DrxCycle::Rf256), // 2.56 s
                    h * 24,
                ),
                ClassSpec::new(
                    "siren",
                    0.20,
                    PagingCycle::Drx(DrxCycle::Rf128), // 1.28 s
                    h * 24,
                ),
                ClassSpec::new(
                    "door-sensor",
                    0.25,
                    PagingCycle::edrx(EdrxCycle::Hf2), // 20.48 s
                    h * 12,
                ),
                // A small metering tail so the sweep still exercises the
                // long-cycle search horizon.
                ClassSpec::new(
                    "backup-meter",
                    0.15,
                    PagingCycle::edrx(EdrxCycle::Hf512),
                    h * 24,
                ),
            ],
        )
        .expect("built-in mix is valid")
    }

    /// A mobility-heavy mix for the churn scenario family: the population
    /// is dominated by devices that physically move — vehicle trackers,
    /// wearables and shared micromobility on short-to-mid reachability
    /// cycles — over a thin static metering tail. Under a
    /// [`ChurnModel`](crate::ChurnModel) the mobile majority is exactly
    /// the cohort that departs, arrives and hands over, so grouping plans
    /// computed at campaign start go stale mid-campaign (the regime of
    /// Pizzi et al.'s sidelink-aided mobile multicast).
    pub fn mobility_churn() -> TrafficMix {
        let h = SimDuration::from_secs(3600);
        TrafficMix::new(
            "mobility-churn",
            vec![
                ClassSpec::new(
                    "vehicle-tracker",
                    0.35,
                    PagingCycle::edrx(EdrxCycle::Hf4), // 40.96 s
                    SimDuration::from_secs(900),
                ),
                ClassSpec::new(
                    "wearable",
                    0.25,
                    PagingCycle::edrx(EdrxCycle::Hf16), // 163.84 s
                    SimDuration::from_secs(1800),
                ),
                ClassSpec::new(
                    "shared-scooter",
                    0.20,
                    PagingCycle::Drx(DrxCycle::Rf256), // 2.56 s
                    SimDuration::from_secs(600),
                ),
                // The static anchor: long-cycle meters that never move,
                // keeping the long-horizon search path exercised.
                ClassSpec::new(
                    "parking-sensor",
                    0.20,
                    PagingCycle::edrx(EdrxCycle::Hf512), // 5242.88 s
                    h * 24,
                ),
            ],
        )
        .expect("built-in mix is valid")
    }

    /// A handover-storm mix: almost the whole population is vehicular or
    /// transit-mounted on short reachability cycles, the cohort that
    /// re-registers en masse when a train passes a cell edge or a road
    /// closes — the synchronized re-registration burst of grouping-based
    /// access-control studies (Han & Schotten). Pair with a
    /// [`ChurnModel`](crate::ChurnModel) carrying a high handover rate.
    pub fn handover_storm() -> TrafficMix {
        let h = SimDuration::from_secs(3600);
        TrafficMix::new(
            "handover-storm",
            vec![
                ClassSpec::new(
                    "commuter-vehicle",
                    0.50,
                    PagingCycle::Drx(DrxCycle::Rf256), // 2.56 s
                    SimDuration::from_secs(300),
                ),
                ClassSpec::new(
                    "transit-tracker",
                    0.30,
                    PagingCycle::edrx(EdrxCycle::Hf2), // 20.48 s
                    SimDuration::from_secs(600),
                ),
                // Fixed roadside infrastructure: present through every
                // storm, on a mid eDRX cycle.
                ClassSpec::new(
                    "roadside-unit",
                    0.20,
                    PagingCycle::edrx(EdrxCycle::Hf128), // 1310.72 s
                    h * 12,
                ),
            ],
        )
        .expect("built-in mix is valid")
    }

    /// A metering-only mix for the massive-n scale tier: every class sits
    /// on a long eDRX cycle (87 min down to 22 min), so the number of
    /// paging occasions per device over a campaign horizon stays small
    /// (2–16) and engine event counts scale as ~4·n rather than the
    /// ~280·n a street-light class on Hf2 would impose at n = 10^6. This
    /// is also the regime the paper's premise names: massive MTC is
    /// battery-constrained metering, not commandable infrastructure.
    pub fn massive_metering() -> TrafficMix {
        let h = SimDuration::from_secs(3600);
        TrafficMix::new(
            "massive-metering",
            vec![
                ClassSpec::new(
                    "electricity-meter",
                    0.55,
                    PagingCycle::edrx(EdrxCycle::Hf1024), // 10485.76 s
                    h * 24,
                ),
                ClassSpec::new(
                    "water-meter",
                    0.25,
                    PagingCycle::edrx(EdrxCycle::Hf512), // 5242.88 s
                    h * 24,
                ),
                ClassSpec::new(
                    "gas-meter",
                    0.12,
                    PagingCycle::edrx(EdrxCycle::Hf256), // 2621.44 s
                    h * 24,
                ),
                ClassSpec::new(
                    "heat-allocator",
                    0.08,
                    PagingCycle::edrx(EdrxCycle::Hf128), // 1310.72 s
                    h * 12,
                ),
            ],
        )
        .expect("built-in mix is valid")
    }

    /// A metering estate spread across coverage-enhancement classes —
    /// the regime where cover *quality* is airtime, not transmission
    /// count (Andres-Maldonado et al. quantify the per-class repetition
    /// cost). Street-level infrastructure sits in CE0, basement meters in
    /// CE1 and pit/manhole sensors in CE2 (~70/20/10), all on long eDRX
    /// cycles so the weighted and unweighted covers genuinely diverge:
    /// windows exist that cover only cheap CE0 cohorts, and the
    /// ratio-greedy kernel routes around the repetition-heavy ones.
    pub fn heterogeneous_coverage() -> TrafficMix {
        let h = SimDuration::from_secs(3600);
        TrafficMix::new(
            "heterogeneous-coverage",
            vec![
                ClassSpec {
                    name: "street-meter".into(),
                    share: 0.50,
                    cycles: vec![
                        (PagingCycle::edrx(EdrxCycle::Hf512), 0.7),
                        (PagingCycle::edrx(EdrxCycle::Hf1024), 0.3),
                    ],
                    report_interval: h * 24,
                    coverage: CoverageClass::Normal,
                },
                ClassSpec::new(
                    "courtyard-sensor",
                    0.20,
                    PagingCycle::edrx(EdrxCycle::Hf128), // 1310.72 s
                    h * 12,
                ),
                ClassSpec {
                    name: "basement-meter".into(),
                    share: 0.20,
                    cycles: vec![
                        (PagingCycle::edrx(EdrxCycle::Hf512), 0.5),
                        (PagingCycle::edrx(EdrxCycle::Hf1024), 0.5),
                    ],
                    report_interval: h * 24,
                    coverage: CoverageClass::Robust,
                },
                ClassSpec::new(
                    "manhole-sensor",
                    0.10,
                    PagingCycle::edrx(EdrxCycle::Hf1024), // 10485.76 s
                    h * 24,
                )
                .with_coverage(CoverageClass::Extreme),
            ],
        )
        .expect("built-in mix is valid")
    }

    /// Names of the registered built-in mixes, selectable by
    /// [`TrafficMix::by_name`] (and the figure binaries' `--mix` flag).
    pub const REGISTRY: [&'static str; 9] = [
        "ericsson-city",
        "clustered-heterogeneous",
        "bursty-alarm",
        "mobility-churn",
        "handover-storm",
        "massive-metering",
        "heterogeneous-coverage",
        "short-drx",
        "uniform-edrx",
    ];

    /// Looks up a registered built-in mix by name.
    ///
    /// Returns `None` for unknown names; callers that surface errors to
    /// users should list [`TrafficMix::REGISTRY`].
    pub fn by_name(name: &str) -> Option<TrafficMix> {
        match name {
            "ericsson-city" => Some(TrafficMix::ericsson_city()),
            "clustered-heterogeneous" => Some(TrafficMix::clustered_heterogeneous()),
            "bursty-alarm" => Some(TrafficMix::bursty_alarm()),
            "mobility-churn" => Some(TrafficMix::mobility_churn()),
            "handover-storm" => Some(TrafficMix::handover_storm()),
            "massive-metering" => Some(TrafficMix::massive_metering()),
            "heterogeneous-coverage" => Some(TrafficMix::heterogeneous_coverage()),
            "short-drx" => Some(TrafficMix::short_drx()),
            "uniform-edrx" => {
                let mut mix = TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf1024));
                mix.name = "uniform-edrx".into();
                Some(mix)
            }
            _ => None,
        }
    }

    /// A degenerate mix where every device uses the same cycle — useful for
    /// analytical cross-checks and ablations.
    pub fn uniform(cycle: PagingCycle) -> TrafficMix {
        TrafficMix::new(
            "uniform",
            vec![ClassSpec::new(
                "uniform",
                1.0,
                cycle,
                SimDuration::from_secs(3600),
            )],
        )
        .expect("uniform mix is valid")
    }

    /// A mix of regular-DRX devices only (no eDRX) — the LTE-like corner.
    pub fn short_drx() -> TrafficMix {
        TrafficMix::new(
            "short-drx",
            DrxCycle::ALL
                .iter()
                .map(|&d| {
                    ClassSpec::new(
                        format!("drx-{}", d.frames()),
                        1.0,
                        PagingCycle::Drx(d),
                        SimDuration::from_secs(600),
                    )
                })
                .collect(),
        )
        .expect("short-drx mix is valid")
    }

    /// Samples one device from the mix under the given identity — the
    /// per-device half of [`TrafficMix::generate`], also used by
    /// [`ChurnModel`](crate::ChurnModel) to admit arrivals mid-campaign.
    ///
    /// Draw order (class, cycle, UE identity) is the generation order, so
    /// `generate` remains bit-identical to its historical behaviour.
    ///
    /// # Errors
    ///
    /// [`TrafficError::EmptyMix`] when the mix has no classes.
    pub fn sample_device<R: Rng + ?Sized>(
        &self,
        id: DeviceId,
        rng: &mut R,
    ) -> Result<DeviceProfile, TrafficError> {
        if self.classes.is_empty() {
            return Err(TrafficError::EmptyMix);
        }
        let total_share: f64 = self.classes.iter().map(|c| c.share).sum();
        let mut x = rng.gen_range(0.0..total_share);
        let mut class_idx = self.classes.len() - 1;
        for (ci, c) in self.classes.iter().enumerate() {
            if x < c.share {
                class_idx = ci;
                break;
            }
            x -= c.share;
        }
        let class = &self.classes[class_idx];
        let cycle = class.sample_cycle(rng);
        Ok(DeviceProfile {
            id,
            ue: UeId(rng.gen()),
            class: ClassId(class_idx),
            paging: PagingConfig {
                cycle,
                nb: Default::default(),
            },
            report_interval: class.report_interval,
        })
    }

    /// Generates a population of `n` devices.
    ///
    /// Device class, paging cycle and UE identity are all drawn from `rng`,
    /// so populations are reproducible from the seed.
    ///
    /// # Errors
    ///
    /// Returns a [`TrafficError`] when the mix is structurally invalid
    /// (cannot happen for the built-in mixes).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Population, TrafficError> {
        if self.classes.is_empty() {
            return Err(TrafficError::EmptyMix);
        }
        // Devices land straight in the population's columns: no
        // intermediate AoS Vec, so generation allocates the five column
        // buffers once regardless of n. Draw order per device is
        // unchanged (class, cycle, UE identity), keeping populations
        // bit-identical to the historical AoS path.
        let mut pop = Population::with_capacity(
            self.name.clone(),
            self.classes.iter().map(|c| c.name.clone()).collect(),
            n,
        );
        pop.set_class_coverages(self.classes.iter().map(|c| c.coverage).collect());
        for i in 0..n {
            pop.push(self.sample_device(DeviceId(i as u32), rng)?);
        }
        Ok(pop)
    }
}

impl fmt::Display for TrafficMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} classes)", self.name, self.classes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_mix_rejected() {
        assert_eq!(TrafficMix::new("x", vec![]), Err(TrafficError::EmptyMix));
    }

    #[test]
    fn bad_share_rejected() {
        let err = TrafficMix::new(
            "x",
            vec![ClassSpec::new(
                "c",
                0.0,
                PagingCycle::Drx(DrxCycle::Rf32),
                SimDuration::from_secs(1),
            )],
        )
        .unwrap_err();
        assert!(matches!(err, TrafficError::NonPositiveWeight { .. }));
    }

    #[test]
    fn class_without_cycles_rejected() {
        let err = TrafficMix::new(
            "x",
            vec![ClassSpec {
                name: "c".into(),
                share: 1.0,
                cycles: vec![],
                report_interval: SimDuration::from_secs(1),
                coverage: CoverageClass::Normal,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, TrafficError::NoCycles { .. }));
    }

    #[test]
    fn city_mix_shares_roughly_hold() {
        let mix = TrafficMix::ericsson_city();
        let mut rng = StdRng::seed_from_u64(42);
        let pop = mix.generate(10_000, &mut rng).unwrap();
        let alarms = pop
            .iter()
            .filter(|d| pop.class_name(d.class) == "alarm-actuator")
            .count();
        // 9 % +- 1 % of 10k.
        assert!((800..=1000).contains(&alarms), "alarms {alarms}");
    }

    #[test]
    fn generation_is_reproducible() {
        let mix = TrafficMix::ericsson_city();
        let a = mix.generate(100, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = mix.generate(100, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(a, b);
        let c = mix.generate(100, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_mix_is_single_cycle() {
        let mix = TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf16));
        let pop = mix.generate(50, &mut StdRng::seed_from_u64(3)).unwrap();
        assert!(pop
            .iter()
            .all(|d| d.paging.cycle.period_frames() == EdrxCycle::Hf16.frames()));
    }

    #[test]
    fn short_drx_mix_has_no_edrx() {
        let mix = TrafficMix::short_drx();
        let pop = mix.generate(200, &mut StdRng::seed_from_u64(4)).unwrap();
        assert!(pop.iter().all(|d| !d.paging.cycle.is_edrx()));
    }

    #[test]
    fn weighted_cycles_within_class_are_sampled() {
        // Build a custom class with a 60/40 cycle split and check the
        // sampler honours the weights.
        let mix = TrafficMix::new(
            "split",
            vec![ClassSpec {
                name: "meters".into(),
                share: 1.0,
                cycles: vec![
                    (PagingCycle::edrx(EdrxCycle::Hf512), 0.6),
                    (PagingCycle::edrx(EdrxCycle::Hf1024), 0.4),
                ],
                report_interval: SimDuration::from_secs(3600),
                coverage: CoverageClass::Normal,
            }],
        )
        .unwrap();
        let pop = mix.generate(5000, &mut StdRng::seed_from_u64(5)).unwrap();
        let (hf512, hf1024): (usize, usize) =
            pop.iter()
                .fold((0, 0), |(a, b), d| match d.paging.cycle.period_frames() {
                    524288 => (a + 1, b),
                    1048576 => (a, b + 1),
                    other => panic!("unexpected cycle {other}"),
                });
        assert!(hf512 > hf1024, "60/40 split expected: {hf512} vs {hf1024}");
        assert!((2700..=3300).contains(&hf512), "hf512 {hf512}");
    }

    #[test]
    fn registry_resolves_every_name() {
        for name in TrafficMix::REGISTRY {
            let mix = TrafficMix::by_name(name)
                .unwrap_or_else(|| panic!("registered mix {name} must resolve"));
            assert_eq!(mix.name, name, "registry name must match the mix name");
            // Every registered mix generates a valid population.
            let pop = mix.generate(50, &mut StdRng::seed_from_u64(7)).unwrap();
            assert_eq!(pop.len(), 50);
        }
        assert!(TrafficMix::by_name("no-such-mix").is_none());
    }

    #[test]
    fn clustered_mix_has_dominant_same_cycle_cohorts() {
        let mix = TrafficMix::clustered_heterogeneous();
        let pop = mix.generate(4000, &mut StdRng::seed_from_u64(11)).unwrap();
        // The meter cluster's dominant cycle (Hf512) should be the single
        // largest cohort: 0.45 share * 0.85 weight ≈ 38 % of devices.
        let hf512 = pop
            .iter()
            .filter(|d| d.paging.cycle.period_frames() == EdrxCycle::Hf512.frames())
            .count();
        assert!(
            (1200..=1900).contains(&hf512),
            "dominant cohort should be ~38%: {hf512}/4000"
        );
    }

    #[test]
    fn bursty_alarm_mix_is_short_cycle_dominated() {
        let mix = TrafficMix::bursty_alarm();
        let pop = mix.generate(2000, &mut StdRng::seed_from_u64(13)).unwrap();
        let short = pop
            .iter()
            .filter(|d| d.paging.cycle.period().as_secs_f64() <= 21.0)
            .count();
        assert!(
            short >= 1600,
            "alarm mix should be ≥80% short-cycle devices: {short}/2000"
        );
    }

    #[test]
    fn mobility_mix_is_mobile_majority() {
        // ≈80 % of the mobility-churn population should sit on mobile
        // classes (tracker/wearable/scooter), the cohort churn targets.
        let mix = TrafficMix::mobility_churn();
        let pop = mix.generate(2000, &mut StdRng::seed_from_u64(17)).unwrap();
        let mobile = pop
            .iter()
            .filter(|d| pop.class_name(d.class) != "parking-sensor")
            .count();
        assert!((1450..=1750).contains(&mobile), "mobile {mobile}/2000");
    }

    #[test]
    fn handover_storm_mix_is_short_cycle_vehicular() {
        let mix = TrafficMix::handover_storm();
        let pop = mix.generate(2000, &mut StdRng::seed_from_u64(19)).unwrap();
        let short = pop
            .iter()
            .filter(|d| d.paging.cycle.period().as_secs_f64() <= 21.0)
            .count();
        assert!(
            short >= 1400,
            "storm mix should be ≥70% short-cycle devices: {short}/2000"
        );
    }

    #[test]
    fn massive_metering_mix_is_long_cycle_only() {
        // The scale-tier mix must keep paging occasions per device small:
        // every class sits on an eDRX cycle of at least Hf128 (~22 min).
        let mix = TrafficMix::massive_metering();
        let pop = mix.generate(2000, &mut StdRng::seed_from_u64(23)).unwrap();
        assert!(pop
            .iter()
            .all(|d| d.paging.cycle.period_frames() >= EdrxCycle::Hf128.frames()));
        // Dominated by the longest cycle, like a real metering estate.
        let hf1024 = pop
            .iter()
            .filter(|d| d.paging.cycle.period_frames() == EdrxCycle::Hf1024.frames())
            .count();
        assert!((900..=1300).contains(&hf1024), "hf1024 {hf1024}/2000");
    }

    #[test]
    fn heterogeneous_coverage_mix_spreads_classes() {
        let mix = TrafficMix::heterogeneous_coverage();
        let pop = mix.generate(4000, &mut StdRng::seed_from_u64(29)).unwrap();
        // The coverage table follows the class specs, in class order.
        assert_eq!(
            pop.class_coverages(),
            &[
                CoverageClass::Normal,
                CoverageClass::Normal,
                CoverageClass::Robust,
                CoverageClass::Extreme,
            ]
        );
        // ~70/20/10 split over devices.
        let mut by_cov = [0usize; 3];
        for d in pop.iter() {
            by_cov[pop.coverage_of(d.class) as usize] += 1;
        }
        assert!((2500..=3100).contains(&by_cov[0]), "CE0 {by_cov:?}");
        assert!((600..=1000).contains(&by_cov[1]), "CE1 {by_cov:?}");
        assert!((250..=550).contains(&by_cov[2]), "CE2 {by_cov:?}");
        // Coverage is class-level, not drawn from the RNG: the device
        // stream must be identical to a coverage-less twin of the mix.
        let mut twin = mix.clone();
        for c in &mut twin.classes {
            c.coverage = CoverageClass::Normal;
        }
        let twin_pop = twin.generate(100, &mut StdRng::seed_from_u64(31)).unwrap();
        let pop100 = mix.generate(100, &mut StdRng::seed_from_u64(31)).unwrap();
        assert_eq!(twin_pop.profiles(), pop100.profiles());
    }

    #[test]
    fn coverage_defaults_to_normal_for_plain_classes() {
        let mix = TrafficMix::ericsson_city();
        assert!(mix
            .classes()
            .iter()
            .all(|c| c.coverage == CoverageClass::Normal));
        let pop = mix.generate(10, &mut StdRng::seed_from_u64(1)).unwrap();
        assert!(pop
            .class_coverages()
            .iter()
            .all(|&c| c == CoverageClass::Normal));
    }

    #[test]
    fn sample_device_matches_generate_stream() {
        // generate() is defined as repeated sample_device() calls; the
        // refactor must keep historical populations bit-identical.
        let mix = TrafficMix::ericsson_city();
        let pop = mix.generate(40, &mut StdRng::seed_from_u64(21)).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        for (i, expected) in pop.iter().enumerate() {
            let sampled = mix.sample_device(DeviceId(i as u32), &mut rng).unwrap();
            assert_eq!(sampled, expected, "device {i}");
        }
    }

    #[test]
    fn city_mix_is_bimodal() {
        // The calibrated city mix: a short-cycle reachability mode
        // (<= 41 s) and a long-cycle metering mode (>= 87 min), nothing in
        // between except a thin environmental class.
        let mix = TrafficMix::ericsson_city();
        let pop = mix.generate(2000, &mut StdRng::seed_from_u64(9)).unwrap();
        let (short, long): (usize, usize) = pop.iter().fold((0, 0), |(s, l), d| {
            let secs = d.paging.cycle.period().as_secs_f64();
            if secs <= 41.0 {
                (s + 1, l)
            } else if secs >= 5000.0 {
                (s, l + 1)
            } else {
                (s, l)
            }
        });
        assert!(short > 700, "short {short}");
        assert!(long > 1000, "long {long}");
    }
}
