//! Device churn: population evolution across campaign epochs.
//!
//! The paper evaluates its grouping mechanisms over *static* populations:
//! the group that is planned for is exactly the group that receives the
//! payload. Real cells churn — devices power down or leave the cell
//! (departures), fresh devices register (arrivals), and mobile devices
//! hand over and re-register with a new paging identity (handovers, the
//! regime of sidelink-aided mobile multicast and grouping-based access
//! control). A [`ChurnModel`] captures that churn as per-epoch rates and
//! evolves a [`Population`] deterministically from an RNG stream, so a
//! churned campaign is exactly as reproducible as a static one.
//!
//! What churn breaks is the *plan*: a multicast plan pages devices at
//! paging occasions derived from their planning-time UE identities, so
//! an arrival (never planned for) or a handover (planned POs now wrong)
//! is missed by a stale plan until the mechanism re-plans. The simulator
//! layer (`nbiot-sim`) owns that staleness accounting and the re-grouping
//! policies; this module owns only the population process.

use nbiot_time::UeId;
use rand::Rng;

use crate::{DeviceId, DeviceProfile, Population, TrafficError, TrafficMix};

/// One observable fleet-membership change — the churn vocabulary as a
/// replayable event.
///
/// [`ChurnModel::step_recorded`] emits these alongside the evolved
/// population, and [`FleetEvent::apply`] replays them onto a population
/// one at a time. The two views are equivalent by construction: applying
/// a step's events to the pre-step population yields a fleet
/// *bit-identical* to the evolved population the step returned (locked by
/// tests here and by the service-level replay-equivalence proptests).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FleetEvent {
    /// A new device registered with the cell (a churn arrival).
    Register(DeviceProfile),
    /// The device departed the cell (powered down or left coverage).
    Depart(DeviceId),
    /// The device handed over and re-registered under a fresh paging
    /// identity, moving its paging occasions.
    Handover {
        /// Which device re-registered.
        device: DeviceId,
        /// Its new paging identity.
        ue: UeId,
    },
}

impl FleetEvent {
    /// Replays this event onto `pop`.
    ///
    /// Ordering follows the churn process: departures and handovers
    /// address devices already present, registrations append. Arrivals
    /// recorded by [`ChurnModel::step_recorded`] always carry fresh ids,
    /// so replaying a recorded stream never collides.
    ///
    /// # Errors
    ///
    /// [`TrafficError::UnknownDevice`] when a departure or handover names
    /// a device not in `pop`; [`TrafficError::DuplicateDevice`] when a
    /// registration re-uses an id already present.
    pub fn apply(&self, pop: &mut Population) -> Result<(), TrafficError> {
        match *self {
            FleetEvent::Register(device) => {
                if pop.position_of(device.id).is_some() {
                    return Err(TrafficError::DuplicateDevice { device: device.id });
                }
                pop.push(device);
                Ok(())
            }
            FleetEvent::Depart(device) => match pop.position_of(device) {
                Some(row) => {
                    pop.remove_row(row);
                    Ok(())
                }
                None => Err(TrafficError::UnknownDevice { device }),
            },
            FleetEvent::Handover { device, ue } => match pop.position_of(device) {
                Some(row) => {
                    pop.set_ue(row, ue);
                    Ok(())
                }
                None => Err(TrafficError::UnknownDevice { device }),
            },
        }
    }
}

/// Per-epoch population churn rates, applied at every epoch boundary of a
/// campaign.
///
/// Epoch 0 is the initial population; the model then applies `epochs`
/// boundary steps. Each step, in order:
///
/// 1. **departures** — every device independently leaves with probability
///    [`departure_rate`](ChurnModel::departure_rate) (at least one device
///    always remains, so a grouping input can still be built);
/// 2. **handovers** — every surviving device independently re-registers
///    with a fresh UE identity with probability
///    [`handover_rate`](ChurnModel::handover_rate), moving its paging
///    occasions while keeping its group membership;
/// 3. **arrivals** — one Bernoulli trial per *initial* device slot with
///    probability [`arrival_rate`](ChurnModel::arrival_rate) admits a new
///    device freshly sampled from the mix (so the expected arrival count
///    is `arrival_rate × initial size`, independent of how the population
///    has drifted).
///
/// All randomness comes from the RNG passed to [`ChurnModel::step`];
/// evolving the same population with the same stream reproduces the same
/// fleet, which is what keeps churned campaigns bit-identical across
/// thread and shard counts.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChurnModel {
    /// Number of epoch boundaries the population evolves across.
    pub epochs: u32,
    /// Per-epoch probability that a device departs (leaves the cell or
    /// powers down). In `[0, 1]`.
    pub departure_rate: f64,
    /// Expected per-epoch arrivals as a fraction of the initial
    /// population size. In `[0, 1]`.
    pub arrival_rate: f64,
    /// Per-epoch probability that a surviving device hands over and
    /// re-registers under a fresh paging identity. In `[0, 1]`.
    pub handover_rate: f64,
}

impl ChurnModel {
    /// The degenerate model: no epochs, no churn — behaviourally identical
    /// to a static population.
    pub const STATIC: ChurnModel = ChurnModel {
        epochs: 0,
        departure_rate: 0.0,
        arrival_rate: 0.0,
        handover_rate: 0.0,
    };

    /// Whether this model can never change a population (no epochs, or
    /// all rates zero).
    pub fn is_static(&self) -> bool {
        self.epochs == 0
            || (self.departure_rate == 0.0 && self.arrival_rate == 0.0 && self.handover_rate == 0.0)
    }

    /// Checks every rate is a probability (finite, in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// [`TrafficError::InvalidChurnRate`] naming the first offending rate.
    pub fn validate(&self) -> Result<(), TrafficError> {
        for (what, value) in [
            ("departure_rate", self.departure_rate),
            ("arrival_rate", self.arrival_rate),
            ("handover_rate", self.handover_rate),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(TrafficError::InvalidChurnRate { what, value });
            }
        }
        Ok(())
    }

    /// Applies one epoch boundary to `pop`: departures, then handovers,
    /// then arrivals (see the type docs for the exact order). `base_size`
    /// anchors the arrival count (the initial population size);
    /// `next_id` is the allocator for fresh [`DeviceId`]s and is advanced
    /// by the number of arrivals, keeping identities unique across the
    /// whole campaign.
    ///
    /// Device order is preserved: survivors keep their relative order and
    /// arrivals are appended, so an initially id-sorted population stays
    /// id-sorted.
    ///
    /// # Errors
    ///
    /// [`ChurnModel::validate`] failures, or [`TrafficError::EmptyMix`]
    /// when arrivals are requested from a structurally empty mix.
    pub fn step<R: Rng + ?Sized>(
        &self,
        mix: &TrafficMix,
        pop: &Population,
        base_size: usize,
        next_id: &mut u32,
        rng: &mut R,
    ) -> Result<(Population, ChurnEvents), TrafficError> {
        let (evolved, events, _) = self.step_recorded(mix, pop, base_size, next_id, rng)?;
        Ok((evolved, events))
    }

    /// Like [`ChurnModel::step`], additionally recording each change as a
    /// [`FleetEvent`] in the order it happened (departures/handovers in
    /// device order, then arrivals).
    ///
    /// The RNG draw order is exactly [`ChurnModel::step`]'s — per
    /// surviving device: departure, then handover + fresh identity; then
    /// one arrival trial per initial slot — so the evolved population is
    /// bit-identical to the unrecorded path, and replaying the returned
    /// events onto a clone of `pop` with [`FleetEvent::apply`] reproduces
    /// it bit-identically too (including the keep-one rule: the retained
    /// device's departure is *not* recorded).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChurnModel::step`].
    pub fn step_recorded<R: Rng + ?Sized>(
        &self,
        mix: &TrafficMix,
        pop: &Population,
        base_size: usize,
        next_id: &mut u32,
        rng: &mut R,
    ) -> Result<(Population, ChurnEvents, Vec<FleetEvent>), TrafficError> {
        self.validate()?;
        let mut events = ChurnEvents::default();
        let mut log = Vec::new();
        // Survivors stream straight into the evolved population's columns
        // (no intermediate device Vec); the RNG draw order per device —
        // departure, then handover + fresh identity — is unchanged, so
        // evolved fleets stay bit-identical to the historical AoS path.
        let mut evolved = pop.empty_like(pop.len());
        for i in 0..pop.len() {
            if self.departure_rate > 0.0 && rng.gen_bool(self.departure_rate) {
                events.departures += 1;
                log.push(FleetEvent::Depart(pop.id(i)));
                continue;
            }
            let mut device = pop.device(i);
            if self.handover_rate > 0.0 && rng.gen_bool(self.handover_rate) {
                device.ue = UeId(rng.gen());
                events.handovers += 1;
                log.push(FleetEvent::Handover {
                    device: device.id,
                    ue: device.ue,
                });
            }
            evolved.push(device);
        }
        // A grouping input needs at least one device: when the whole
        // population departs in one step, the last device stays put. Its
        // departure is necessarily the last event recorded so far
        // (departed devices draw nothing else, arrivals come later).
        if evolved.is_empty() && !pop.is_empty() {
            evolved.push(pop.device(pop.len() - 1));
            events.departures -= 1;
            let undone = log.pop();
            debug_assert_eq!(undone, Some(FleetEvent::Depart(pop.id(pop.len() - 1))));
        }
        if self.arrival_rate > 0.0 {
            for _ in 0..base_size {
                if rng.gen_bool(self.arrival_rate) {
                    let device = mix.sample_device(DeviceId(*next_id), rng)?;
                    evolved.push(device);
                    log.push(FleetEvent::Register(device));
                    *next_id += 1;
                    events.arrivals += 1;
                }
            }
        }
        Ok((evolved, events, log))
    }
}

/// What one [`ChurnModel::step`] did to the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChurnEvents {
    /// Devices that joined the cell this epoch.
    pub arrivals: usize,
    /// Devices that left the cell this epoch.
    pub departures: usize,
    /// Devices that re-registered under a fresh paging identity.
    pub handovers: usize,
}

impl ChurnEvents {
    /// Whether nothing happened this epoch (the plan stayed exact).
    pub fn is_quiet(&self) -> bool {
        self.arrivals == 0 && self.departures == 0 && self.handovers == 0
    }

    /// Total membership/identity changes this epoch.
    pub fn total(&self) -> usize {
        self.arrivals + self.departures + self.handovers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop(n: usize, seed: u64) -> Population {
        TrafficMix::ericsson_city()
            .generate(n, &mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    fn churny() -> ChurnModel {
        ChurnModel {
            epochs: 4,
            departure_rate: 0.2,
            arrival_rate: 0.2,
            handover_rate: 0.3,
        }
    }

    #[test]
    fn static_model_changes_nothing() {
        let mix = TrafficMix::ericsson_city();
        let p = pop(50, 1);
        let mut next_id = 50;
        let (evolved, events) = ChurnModel::STATIC
            .step(&mix, &p, 50, &mut next_id, &mut StdRng::seed_from_u64(2))
            .unwrap();
        assert!(events.is_quiet());
        assert_eq!(events.total(), 0);
        assert_eq!(evolved, p);
        assert_eq!(next_id, 50);
        assert!(ChurnModel::STATIC.is_static());
        assert!(!churny().is_static());
        // Rates of zero are static even with epochs configured.
        let zero_rates = ChurnModel {
            epochs: 5,
            ..ChurnModel::STATIC
        };
        assert!(zero_rates.is_static());
    }

    #[test]
    fn step_is_reproducible_from_the_stream() {
        let mix = TrafficMix::ericsson_city();
        let p = pop(80, 3);
        let run = || {
            let mut next_id = 80;
            churny()
                .step(&mix, &p, 80, &mut next_id, &mut StdRng::seed_from_u64(7))
                .unwrap()
        };
        let (a, ea) = run();
        let (b, eb) = run();
        assert_eq!(a, b);
        assert_eq!(ea, eb);
        assert!(ea.total() > 0, "churny rates on 80 devices must churn");
    }

    #[test]
    fn departures_shrink_and_arrivals_grow_the_population() {
        let mix = TrafficMix::ericsson_city();
        let p = pop(200, 4);
        let mut next_id = 200;
        let depart_only = ChurnModel {
            epochs: 1,
            departure_rate: 0.5,
            arrival_rate: 0.0,
            handover_rate: 0.0,
        };
        let (shrunk, ev) = depart_only
            .step(&mix, &p, 200, &mut next_id, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(shrunk.len(), 200 - ev.departures);
        assert!(ev.departures > 50, "{ev:?}");
        let arrive_only = ChurnModel {
            epochs: 1,
            departure_rate: 0.0,
            arrival_rate: 0.5,
            handover_rate: 0.0,
        };
        let (grown, ev2) = arrive_only
            .step(
                &mix,
                &shrunk,
                200,
                &mut next_id,
                &mut StdRng::seed_from_u64(10),
            )
            .unwrap();
        assert_eq!(grown.len(), shrunk.len() + ev2.arrivals);
        assert!(ev2.arrivals > 50, "{ev2:?}");
        assert_eq!(next_id, 200 + ev2.arrivals as u32);
    }

    #[test]
    fn handover_changes_identity_but_not_membership() {
        let mix = TrafficMix::ericsson_city();
        let p = pop(120, 5);
        let mut next_id = 120;
        let handover_only = ChurnModel {
            epochs: 1,
            departure_rate: 0.0,
            arrival_rate: 0.0,
            handover_rate: 0.5,
        };
        let (evolved, ev) = handover_only
            .step(&mix, &p, 120, &mut next_id, &mut StdRng::seed_from_u64(11))
            .unwrap();
        assert_eq!(evolved.len(), 120);
        assert!(ev.handovers > 30, "{ev:?}");
        let changed = evolved
            .iter()
            .zip(p.iter())
            .filter(|(after, before)| after.ue != before.ue)
            .count();
        assert_eq!(changed, ev.handovers);
        // Everything but the paging identity is preserved.
        for (after, before) in evolved.iter().zip(p.iter()) {
            assert_eq!(after.id, before.id);
            assert_eq!(after.class, before.class);
            assert_eq!(after.paging.cycle, before.paging.cycle);
        }
    }

    #[test]
    fn ids_stay_unique_and_sorted_across_epochs() {
        let mix = TrafficMix::ericsson_city();
        let mut current = pop(60, 6);
        let mut next_id = 60;
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..6 {
            let (evolved, _) = churny()
                .step(&mix, &current, 60, &mut next_id, &mut rng)
                .unwrap();
            current = evolved;
            let ids: Vec<u32> = current.iter().map(|d| d.id.0).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(ids, sorted, "ids must stay unique and ascending");
            assert!(!current.is_empty());
        }
    }

    #[test]
    fn total_departure_keeps_one_device() {
        let mix = TrafficMix::ericsson_city();
        let p = pop(10, 7);
        let mut next_id = 10;
        let apocalypse = ChurnModel {
            epochs: 1,
            departure_rate: 1.0,
            arrival_rate: 0.0,
            handover_rate: 0.0,
        };
        let (evolved, ev) = apocalypse
            .step(&mix, &p, 10, &mut next_id, &mut StdRng::seed_from_u64(15))
            .unwrap();
        assert_eq!(evolved.len(), 1);
        assert_eq!(ev.departures, 9);
    }

    #[test]
    fn recorded_step_matches_step_bit_for_bit() {
        let mix = TrafficMix::ericsson_city();
        let p = pop(150, 21);
        let mut id_a = 150;
        let (plain, ev_plain) = churny()
            .step(&mix, &p, 150, &mut id_a, &mut StdRng::seed_from_u64(22))
            .unwrap();
        let mut id_b = 150;
        let (recorded, ev_rec, log) = churny()
            .step_recorded(&mix, &p, 150, &mut id_b, &mut StdRng::seed_from_u64(22))
            .unwrap();
        assert_eq!(plain, recorded);
        assert_eq!(ev_plain, ev_rec);
        assert_eq!(id_a, id_b);
        assert_eq!(log.len(), ev_rec.total());
    }

    #[test]
    fn replaying_recorded_events_reproduces_the_evolved_fleet() {
        let mix = TrafficMix::ericsson_city();
        let mut current = pop(90, 23);
        let mut next_id = 90;
        let mut rng = StdRng::seed_from_u64(24);
        for _ in 0..5 {
            let (evolved, _, log) = churny()
                .step_recorded(&mix, &current, 90, &mut next_id, &mut rng)
                .unwrap();
            let mut replayed = current.clone();
            for event in &log {
                event.apply(&mut replayed).unwrap();
            }
            assert_eq!(replayed, evolved, "replay must be bit-identical");
            current = evolved;
        }
    }

    #[test]
    fn apocalypse_recording_drops_the_retained_departure() {
        let mix = TrafficMix::ericsson_city();
        let p = pop(10, 25);
        let mut next_id = 10;
        let apocalypse = ChurnModel {
            epochs: 1,
            departure_rate: 1.0,
            arrival_rate: 0.0,
            handover_rate: 0.0,
        };
        let (evolved, ev, log) = apocalypse
            .step_recorded(&mix, &p, 10, &mut next_id, &mut StdRng::seed_from_u64(26))
            .unwrap();
        assert_eq!(evolved.len(), 1);
        assert_eq!(ev.departures, 9);
        assert_eq!(log.len(), 9, "the kept device's departure is unrecorded");
        assert!(log.iter().all(|e| *e != FleetEvent::Depart(DeviceId(9))));
        let mut replayed = p.clone();
        for event in &log {
            event.apply(&mut replayed).unwrap();
        }
        assert_eq!(replayed, evolved);
    }

    #[test]
    fn apply_rejects_unknown_and_duplicate_devices() {
        let mut p = pop(5, 27);
        let err = FleetEvent::Depart(DeviceId(42)).apply(&mut p).unwrap_err();
        assert!(matches!(
            err,
            TrafficError::UnknownDevice {
                device: DeviceId(42)
            }
        ));
        let err = FleetEvent::Handover {
            device: DeviceId(42),
            ue: nbiot_time::UeId(1),
        }
        .apply(&mut p)
        .unwrap_err();
        assert!(matches!(err, TrafficError::UnknownDevice { .. }));
        let dup = p.device(0);
        let err = FleetEvent::Register(dup).apply(&mut p).unwrap_err();
        assert!(matches!(
            err,
            TrafficError::DuplicateDevice {
                device: DeviceId(0)
            }
        ));
        assert_eq!(p.len(), 5, "failed events must not mutate the fleet");
    }

    #[test]
    fn invalid_rates_are_rejected() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let model = ChurnModel {
                epochs: 1,
                departure_rate: bad,
                arrival_rate: 0.0,
                handover_rate: 0.0,
            };
            assert!(
                matches!(
                    model.validate(),
                    Err(TrafficError::InvalidChurnRate {
                        what: "departure_rate",
                        ..
                    })
                ),
                "{bad}"
            );
        }
        assert!(churny().validate().is_ok());
    }

    #[test]
    fn arrivals_are_sampled_from_the_mix_classes() {
        let mix = TrafficMix::bursty_alarm();
        let p = mix.generate(100, &mut StdRng::seed_from_u64(8)).unwrap();
        let mut next_id = 100;
        let arrive = ChurnModel {
            epochs: 1,
            departure_rate: 0.0,
            arrival_rate: 0.4,
            handover_rate: 0.0,
        };
        let (evolved, ev) = arrive
            .step(&mix, &p, 100, &mut next_id, &mut StdRng::seed_from_u64(16))
            .unwrap();
        assert!(ev.arrivals > 10);
        for d in evolved.iter().skip(100) {
            assert!(d.id.0 >= 100, "arrival ids come from the allocator");
            // Arrivals belong to one of the mix's classes.
            assert!(d.class.0 < mix.classes().len());
        }
    }
}
