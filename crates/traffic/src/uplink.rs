//! Background uplink report traffic.

use rand::Rng;

use nbiot_time::{SimDuration, SimInstant, TimeWindow};

/// Samples the arrival instants of a Poisson reporting process with the
/// given mean interval over `horizon`.
///
/// Used to model the cell's background uplink load (device reports) for the
/// random-access contention ablation; the grouping mechanisms themselves do
/// not depend on it.
///
/// # Example
///
/// ```
/// use nbiot_traffic::poisson_arrivals;
/// use nbiot_time::{SimDuration, SimInstant, TimeWindow};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let horizon = TimeWindow::new(SimInstant::ZERO, SimInstant::from_secs(3600));
/// let arrivals = poisson_arrivals(SimDuration::from_secs(60), horizon, &mut rng);
/// // Roughly one report per minute over an hour.
/// assert!((30..=120).contains(&arrivals.len()));
/// ```
pub fn poisson_arrivals<R: Rng + ?Sized>(
    mean_interval: SimDuration,
    horizon: TimeWindow,
    rng: &mut R,
) -> Vec<SimInstant> {
    let mut arrivals = Vec::new();
    if mean_interval.is_zero() || horizon.is_empty() {
        return arrivals;
    }
    let mean_ms = mean_interval.as_ms() as f64;
    let mut t = horizon.start();
    loop {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap_ms = (-u.ln() * mean_ms).ceil().max(1.0) as u64;
        t += SimDuration::from_ms(gap_ms);
        if !horizon.contains(t) {
            break;
        }
        arrivals.push(t);
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_matches_mean_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let horizon = TimeWindow::new(SimInstant::ZERO, SimInstant::from_secs(100_000));
        let arrivals = poisson_arrivals(SimDuration::from_secs(100), horizon, &mut rng);
        // Expect ~1000 arrivals; allow 10 %.
        assert!(
            (900..=1100).contains(&arrivals.len()),
            "{} arrivals",
            arrivals.len()
        );
    }

    #[test]
    fn arrivals_are_sorted_and_inside_horizon() {
        let mut rng = StdRng::seed_from_u64(10);
        let horizon = TimeWindow::new(SimInstant::from_secs(50), SimInstant::from_secs(150));
        let arrivals = poisson_arrivals(SimDuration::from_secs(5), horizon, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(arrivals.iter().all(|&a| horizon.contains(a)));
    }

    #[test]
    fn degenerate_inputs_yield_nothing() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = SimInstant::from_secs(1);
        assert!(poisson_arrivals(
            SimDuration::ZERO,
            TimeWindow::new(SimInstant::ZERO, SimInstant::from_secs(10)),
            &mut rng
        )
        .is_empty());
        assert!(
            poisson_arrivals(SimDuration::from_secs(1), TimeWindow::new(t, t), &mut rng).is_empty()
        );
    }
}
