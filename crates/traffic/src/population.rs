//! Generated device populations.
//!
//! # Data layout
//!
//! [`Population`] stores its devices in **struct-of-arrays** form: one
//! parallel column per device attribute (`ues`, `classes`, `pagings`,
//! `report_intervals`) plus an interned class-name table shared by every
//! device of a class. The columnar core is what makes the massive-n tier
//! (10^5–10^6 devices) affordable: hot loops touch only the column they
//! need (e.g. schedule resolution reads `pagings`/`ues` and never drags
//! class names or report intervals through the cache), and cloning a
//! population for a churn epoch is a handful of `memcpy`s instead of n
//! struct moves. The row view [`DeviceProfile`] is retained as a cheap
//! by-value accessor ([`Population::device`], [`Population::iter`]); it
//! materializes on demand from the columns and costs only register work.
//!
//! Device ids are *not* stored as a column: for generated populations they
//! are the row index. Churn can break that (departures compact rows,
//! arrivals append fresh ids), so a population carries an optional `ids`
//! column that is only allocated once the identity map diverges from the
//! row index ([`Population::push`] handles the transition).

use core::fmt;

use nbiot_phy::CoverageClass;
use nbiot_time::{PagingConfig, PagingSchedule, SimDuration, TimeError, UeId};

/// Index of a device within its population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The index as `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Index of a device class within its mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct ClassId(pub usize);

/// One generated device — the row view over [`Population`]'s columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceProfile {
    /// Population index.
    pub id: DeviceId,
    /// Paging identity (drives PO phase).
    pub ue: UeId,
    /// Class this device was sampled from.
    pub class: ClassId,
    /// Negotiated paging configuration.
    pub paging: PagingConfig,
    /// Mean background uplink reporting interval.
    pub report_interval: SimDuration,
}

impl DeviceProfile {
    /// Resolves this device's paging-occasion schedule.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures (cannot happen for
    /// populations generated from a validated [`crate::TrafficMix`]).
    pub fn schedule(&self) -> Result<PagingSchedule, TimeError> {
        PagingSchedule::new(&self.paging, self.ue)
    }
}

/// A generated population of devices, tied to the mix it came from.
///
/// Struct-of-arrays storage (see the module docs): parallel columns plus
/// an interned class-name table. The row view is [`Population::device`] /
/// [`Population::iter`]; the columns are exposed directly
/// ([`Population::ues`], [`Population::paging_configs`], …) for hot loops
/// that need only one attribute.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Population {
    mix_name: String,
    class_names: Vec<String>,
    /// Coverage-enhancement class per device class, in class order —
    /// class-level (not per-device) because a deployment's coverage is a
    /// property of where a device model gets installed (basement meters
    /// vs street-level trackers), and keeping it out of the per-device
    /// columns keeps the massive-n tier's memory footprint unchanged.
    class_coverages: Vec<CoverageClass>,
    /// Identity column; `None` while every device's id equals its row
    /// index (the generated-population common case), allocated lazily the
    /// first time an id diverges.
    ids: Option<Vec<DeviceId>>,
    ues: Vec<UeId>,
    classes: Vec<ClassId>,
    pagings: Vec<PagingConfig>,
    report_intervals: Vec<SimDuration>,
}

impl Population {
    /// Creates a population from an explicit device list (normally via
    /// [`crate::TrafficMix::generate`], which builds the columns
    /// directly).
    pub fn new(
        mix_name: String,
        class_names: Vec<String>,
        devices: Vec<DeviceProfile>,
    ) -> Population {
        let mut pop = Population::with_capacity(mix_name, class_names, devices.len());
        for d in devices {
            pop.push(d);
        }
        pop
    }

    /// Creates an empty population with pre-sized columns.
    pub fn with_capacity(
        mix_name: String,
        class_names: Vec<String>,
        capacity: usize,
    ) -> Population {
        Population {
            mix_name,
            class_coverages: vec![CoverageClass::default(); class_names.len()],
            class_names,
            ids: None,
            ues: Vec::with_capacity(capacity),
            classes: Vec::with_capacity(capacity),
            pagings: Vec::with_capacity(capacity),
            report_intervals: Vec::with_capacity(capacity),
        }
    }

    /// An empty population sharing this one's mix and class table — the
    /// builder churn evolution fills epoch by epoch.
    pub fn empty_like(&self, capacity: usize) -> Population {
        let mut pop =
            Population::with_capacity(self.mix_name.clone(), self.class_names.clone(), capacity);
        pop.class_coverages = self.class_coverages.clone();
        pop
    }

    /// Appends one device row across the columns. The identity column
    /// stays elided while `device.id` equals the row index.
    pub fn push(&mut self, device: DeviceProfile) {
        let row = self.ues.len();
        match &mut self.ids {
            Some(ids) => ids.push(device.id),
            None if device.id.index() != row => {
                let mut ids: Vec<DeviceId> = (0..row as u32).map(DeviceId).collect();
                ids.push(device.id);
                self.ids = Some(ids);
            }
            None => {}
        }
        self.ues.push(device.ue);
        self.classes.push(device.class);
        self.pagings.push(device.paging);
        self.report_intervals.push(device.report_interval);
    }

    /// Removes the device at row `i`, shifting later rows down, and
    /// returns the removed row view.
    ///
    /// The identity column is materialized first (later rows keep their
    /// ids while their row indices shift) and re-elided afterwards when
    /// every remaining id equals its row index again — so a population
    /// edited row by row stays *bit-identical* to one built fresh from
    /// the surviving devices, which is what the service replay-equivalence
    /// contract compares.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn remove_row(&mut self, i: usize) -> DeviceProfile {
        let removed = self.device(i);
        if self.ids.is_none() {
            self.ids = Some((0..self.ues.len() as u32).map(DeviceId).collect());
        }
        let ids = self.ids.as_mut().expect("materialized above");
        ids.remove(i);
        self.ues.remove(i);
        self.classes.remove(i);
        self.pagings.remove(i);
        self.report_intervals.remove(i);
        if ids.iter().enumerate().all(|(row, id)| id.index() == row) {
            self.ids = None;
        }
        removed
    }

    /// Replaces the paging identity of the device at row `i` (a handover:
    /// the device re-registers under a fresh identity, moving its paging
    /// occasions).
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn set_ue(&mut self, i: usize, ue: UeId) {
        self.ues[i] = ue;
    }

    /// The row currently holding device `id`, or `None` when no such
    /// device is present.
    pub fn position_of(&self, id: DeviceId) -> Option<usize> {
        match &self.ids {
            Some(ids) => ids.iter().position(|&d| d == id),
            None => (id.index() < self.len()).then(|| id.index()),
        }
    }

    /// Name of the generating mix.
    pub fn mix_name(&self) -> &str {
        &self.mix_name
    }

    /// The device at row `i` (cheap: materialized from the columns).
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    #[inline]
    pub fn device(&self, i: usize) -> DeviceProfile {
        DeviceProfile {
            id: self.id(i),
            ue: self.ues[i],
            class: self.classes[i],
            paging: self.pagings[i],
            report_interval: self.report_intervals[i],
        }
    }

    /// The identity of the device at row `i`.
    #[inline]
    pub fn id(&self, i: usize) -> DeviceId {
        match &self.ids {
            Some(ids) => ids[i],
            None => DeviceId(i as u32),
        }
    }

    /// Iterates the devices in row order, materializing each row view.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = DeviceProfile> + '_ {
        (0..self.len()).map(|i| self.device(i))
    }

    /// Materializes the whole population as a device list — interop for
    /// callers (tests, ablations) that want to edit rows; hot paths should
    /// use [`Population::iter`] or the column accessors instead.
    pub fn profiles(&self) -> Vec<DeviceProfile> {
        self.iter().collect()
    }

    /// Paging-identity column, in row order.
    pub fn ues(&self) -> &[UeId] {
        &self.ues
    }

    /// Class column, in row order.
    pub fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    /// Paging-configuration column, in row order.
    pub fn paging_configs(&self) -> &[PagingConfig] {
        &self.pagings
    }

    /// Report-interval column, in row order.
    pub fn report_intervals(&self) -> &[SimDuration] {
        &self.report_intervals
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.ues.len()
    }

    /// `true` for an empty population.
    pub fn is_empty(&self) -> bool {
        self.ues.is_empty()
    }

    /// All class names of the generating mix, in class order.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Class name lookup.
    ///
    /// # Panics
    ///
    /// Panics for a [`ClassId`] that does not belong to this population.
    pub fn class_name(&self, class: ClassId) -> &str {
        &self.class_names[class.0]
    }

    /// Coverage-enhancement class per device class, in class order.
    pub fn class_coverages(&self) -> &[CoverageClass] {
        &self.class_coverages
    }

    /// Replaces the per-class coverage table (set by
    /// [`crate::TrafficMix::generate`] from the mix's class specs).
    ///
    /// # Panics
    ///
    /// Panics when the table length does not match the class-name table.
    pub fn set_class_coverages(&mut self, coverages: Vec<CoverageClass>) {
        assert_eq!(
            coverages.len(),
            self.class_names.len(),
            "one coverage entry per class"
        );
        self.class_coverages = coverages;
    }

    /// The coverage-enhancement class of devices in `class`.
    ///
    /// Defaults to [`CoverageClass::Normal`] for an out-of-range id, so
    /// populations deserialized from pre-coverage archives stay usable.
    #[inline]
    pub fn coverage_of(&self, class: ClassId) -> CoverageClass {
        self.class_coverages
            .get(class.0)
            .copied()
            .unwrap_or_default()
    }

    /// The longest paging cycle in the population ("maxDRX" in the paper).
    ///
    /// Returns [`SimDuration::ZERO`] for an empty population.
    pub fn max_cycle(&self) -> SimDuration {
        self.pagings
            .iter()
            .map(|p| p.cycle.period())
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Resolves all paging schedules, in device order — a pure
    /// `pagings`/`ues` column walk.
    ///
    /// # Errors
    ///
    /// Propagates the first schedule-resolution failure.
    pub fn schedules(&self) -> Result<Vec<PagingSchedule>, TimeError> {
        self.pagings
            .iter()
            .zip(&self.ues)
            .map(|(paging, &ue)| PagingSchedule::new(paging, ue))
            .collect()
    }

    /// The sub-population belonging to the named class — the typical
    /// multicast group for a firmware update, which targets one device
    /// model. Devices keep their original [`DeviceId`]s.
    ///
    /// Returns an empty population for an unknown class name.
    pub fn filter_by_class(&self, name: &str) -> Population {
        let mut sub = Population::with_capacity(
            format!("{}:{name}", self.mix_name),
            self.class_names.clone(),
            0,
        );
        sub.class_coverages = self.class_coverages.clone();
        for i in 0..self.len() {
            if self.class_names[self.classes[i].0] == name {
                sub.push(self.device(i));
            }
        }
        sub
    }

    /// Splits the population into one sub-population per (non-empty)
    /// class, in class order.
    pub fn partition_by_class(&self) -> Vec<(String, Population)> {
        self.class_names
            .iter()
            .map(|name| (name.clone(), self.filter_by_class(name)))
            .filter(|(_, p)| !p.is_empty())
            .collect()
    }

    /// Number of devices per class, in class order (including empty
    /// classes).
    pub fn class_counts(&self) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; self.class_names.len()];
        for class in &self.classes {
            counts[class.0] += 1;
        }
        self.class_names.iter().cloned().zip(counts).collect()
    }
}

impl fmt::Display for Population {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} devices from mix {} (max cycle {})",
            self.len(),
            self.mix_name,
            self.max_cycle()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrafficMix;
    use nbiot_time::{EdrxCycle, PagingCycle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop(n: usize) -> Population {
        TrafficMix::ericsson_city()
            .generate(n, &mut StdRng::seed_from_u64(11))
            .unwrap()
    }

    #[test]
    fn max_cycle_reflects_longest_device() {
        let mix = TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf32));
        let p = mix.generate(10, &mut StdRng::seed_from_u64(0)).unwrap();
        assert_eq!(p.max_cycle(), EdrxCycle::Hf32.duration());
    }

    #[test]
    fn empty_population_max_cycle_is_zero() {
        let p = Population::new("empty".into(), vec![], vec![]);
        assert_eq!(p.max_cycle(), SimDuration::ZERO);
        assert!(p.is_empty());
    }

    #[test]
    fn schedules_resolve_for_generated_population() {
        let p = pop(300);
        let schedules = p.schedules().unwrap();
        assert_eq!(schedules.len(), 300);
        // The column walk must match the per-row resolution.
        for (i, sched) in schedules.iter().enumerate() {
            assert_eq!(sched, &p.device(i).schedule().unwrap());
        }
    }

    #[test]
    fn device_ids_are_sequential() {
        let p = pop(50);
        for (i, d) in p.iter().enumerate() {
            assert_eq!(d.id.index(), i);
            assert_eq!(p.id(i), d.id);
        }
    }

    #[test]
    fn row_view_matches_columns() {
        let p = pop(80);
        for (i, d) in p.iter().enumerate() {
            assert_eq!(d.ue, p.ues()[i]);
            assert_eq!(d.class, p.classes()[i]);
            assert_eq!(d.paging, p.paging_configs()[i]);
            assert_eq!(d.report_interval, p.report_intervals()[i]);
        }
        assert_eq!(p.profiles().len(), 80);
    }

    #[test]
    fn aos_and_columnar_construction_agree() {
        // Population::new (AoS entry) and push-by-push construction must
        // land on the same columns.
        let p = pop(60);
        let rebuilt = Population::new(
            p.mix_name().to_string(),
            p.class_names().to_vec(),
            p.profiles(),
        );
        assert_eq!(rebuilt, p);
    }

    #[test]
    fn id_column_materializes_on_divergence() {
        // Pushing rows whose ids match the row index keeps the identity
        // column elided; the first divergent id materializes it without
        // losing earlier identities.
        let src = pop(10);
        let mut p = src.empty_like(4);
        p.push(src.device(0));
        p.push(src.device(1));
        let mut stray = src.device(7); // id 7 at row 2: diverges
        stray.id = DeviceId(7);
        p.push(stray);
        assert_eq!(p.id(0), DeviceId(0));
        assert_eq!(p.id(1), DeviceId(1));
        assert_eq!(p.id(2), DeviceId(7));
        assert_eq!(p.device(2).ue, src.device(7).ue);
    }

    #[test]
    fn remove_row_keeps_later_identities_and_reelides() {
        let src = pop(6);
        let mut p = src.clone();
        // Removing a middle row shifts rows but not identities.
        let removed = p.remove_row(2);
        assert_eq!(removed, src.device(2));
        assert_eq!(p.len(), 5);
        assert_eq!(p.id(2), DeviceId(3));
        assert_eq!(p.device(2), src.device(3));
        assert_eq!(p.position_of(DeviceId(2)), None);
        assert_eq!(p.position_of(DeviceId(5)), Some(4));
        // Removing the now-divergent suffix re-elides the identity column:
        // the population becomes bit-identical to a fresh build over the
        // surviving prefix.
        for row in (2..p.len()).rev() {
            p.remove_row(row);
        }
        let fresh = Population::new(
            src.mix_name().to_string(),
            src.class_names().to_vec(),
            vec![src.device(0), src.device(1)],
        );
        assert_eq!(p, fresh);
    }

    #[test]
    fn remove_last_row_stays_canonical() {
        let src = pop(4);
        let mut p = src.clone();
        p.remove_row(3);
        let fresh = Population::new(
            src.mix_name().to_string(),
            src.class_names().to_vec(),
            (0..3).map(|i| src.device(i)).collect(),
        );
        assert_eq!(p, fresh);
    }

    #[test]
    fn set_ue_and_position_of_agree_with_row_views() {
        let src = pop(8);
        let mut p = src.clone();
        let new_ue = nbiot_time::UeId(0xDEAD_BEEF);
        p.set_ue(5, new_ue);
        assert_eq!(p.device(5).ue, new_ue);
        assert_eq!(p.device(5).id, src.device(5).id);
        for i in 0..p.len() {
            assert_eq!(p.position_of(p.id(i)), Some(i));
        }
        assert_eq!(p.position_of(DeviceId(99)), None);
    }

    #[test]
    fn display_is_informative() {
        let p = pop(5);
        let text = p.to_string();
        assert!(text.contains("5 devices"));
        assert!(text.contains("ericsson-city"));
    }

    #[test]
    fn filter_by_class_keeps_ids_and_membership() {
        let p = pop(400);
        let meters = p.filter_by_class("electricity-meter");
        assert!(!meters.is_empty());
        assert!(meters.len() < p.len());
        for d in meters.iter() {
            assert_eq!(p.class_name(d.class), "electricity-meter");
            // Original identity preserved.
            assert_eq!(p.device(d.id.index()).id, d.id);
        }
        assert!(p.filter_by_class("no-such-class").is_empty());
    }

    #[test]
    fn partition_covers_whole_population() {
        let p = pop(300);
        let parts = p.partition_by_class();
        let total: usize = parts.iter().map(|(_, sub)| sub.len()).sum();
        assert_eq!(total, p.len());
        for (name, sub) in &parts {
            assert!(sub.iter().all(|d| p.class_name(d.class) == name));
        }
    }

    #[test]
    fn class_counts_sum_to_population() {
        let p = pop(250);
        let counts = p.class_counts();
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 250);
        assert_eq!(counts.len(), 7); // city mix classes
    }
}
