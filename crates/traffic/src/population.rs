//! Generated device populations.

use core::fmt;

use nbiot_time::{PagingConfig, PagingSchedule, SimDuration, TimeError, UeId};

/// Index of a device within its population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The index as `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Index of a device class within its mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct ClassId(pub usize);

/// One generated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceProfile {
    /// Population index.
    pub id: DeviceId,
    /// Paging identity (drives PO phase).
    pub ue: UeId,
    /// Class this device was sampled from.
    pub class: ClassId,
    /// Negotiated paging configuration.
    pub paging: PagingConfig,
    /// Mean background uplink reporting interval.
    pub report_interval: SimDuration,
}

impl DeviceProfile {
    /// Resolves this device's paging-occasion schedule.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures (cannot happen for
    /// populations generated from a validated [`crate::TrafficMix`]).
    pub fn schedule(&self) -> Result<PagingSchedule, TimeError> {
        PagingSchedule::new(&self.paging, self.ue)
    }
}

/// A generated population of devices, tied to the mix it came from.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Population {
    mix_name: String,
    class_names: Vec<String>,
    devices: Vec<DeviceProfile>,
}

impl Population {
    /// Creates a population (normally via
    /// [`crate::TrafficMix::generate`]).
    pub fn new(
        mix_name: String,
        class_names: Vec<String>,
        devices: Vec<DeviceProfile>,
    ) -> Population {
        Population {
            mix_name,
            class_names,
            devices,
        }
    }

    /// Name of the generating mix.
    pub fn mix_name(&self) -> &str {
        &self.mix_name
    }

    /// The devices.
    pub fn devices(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` for an empty population.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// All class names of the generating mix, in class order.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Class name lookup.
    ///
    /// # Panics
    ///
    /// Panics for a [`ClassId`] that does not belong to this population.
    pub fn class_name(&self, class: ClassId) -> &str {
        &self.class_names[class.0]
    }

    /// The longest paging cycle in the population ("maxDRX" in the paper).
    ///
    /// Returns [`SimDuration::ZERO`] for an empty population.
    pub fn max_cycle(&self) -> SimDuration {
        self.devices
            .iter()
            .map(|d| d.paging.cycle.period())
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Resolves all paging schedules, in device order.
    ///
    /// # Errors
    ///
    /// Propagates the first schedule-resolution failure.
    pub fn schedules(&self) -> Result<Vec<PagingSchedule>, TimeError> {
        self.devices.iter().map(|d| d.schedule()).collect()
    }

    /// The sub-population belonging to the named class — the typical
    /// multicast group for a firmware update, which targets one device
    /// model. Devices keep their original [`DeviceId`]s.
    ///
    /// Returns an empty population for an unknown class name.
    pub fn filter_by_class(&self, name: &str) -> Population {
        let devices = self
            .devices
            .iter()
            .filter(|d| self.class_names[d.class.0] == name)
            .copied()
            .collect();
        Population {
            mix_name: format!("{}:{name}", self.mix_name),
            class_names: self.class_names.clone(),
            devices,
        }
    }

    /// Splits the population into one sub-population per (non-empty)
    /// class, in class order.
    pub fn partition_by_class(&self) -> Vec<(String, Population)> {
        self.class_names
            .iter()
            .map(|name| (name.clone(), self.filter_by_class(name)))
            .filter(|(_, p)| !p.is_empty())
            .collect()
    }

    /// Number of devices per class, in class order (including empty
    /// classes).
    pub fn class_counts(&self) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; self.class_names.len()];
        for d in &self.devices {
            counts[d.class.0] += 1;
        }
        self.class_names.iter().cloned().zip(counts).collect()
    }
}

impl fmt::Display for Population {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} devices from mix {} (max cycle {})",
            self.len(),
            self.mix_name,
            self.max_cycle()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrafficMix;
    use nbiot_time::{EdrxCycle, PagingCycle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop(n: usize) -> Population {
        TrafficMix::ericsson_city()
            .generate(n, &mut StdRng::seed_from_u64(11))
            .unwrap()
    }

    #[test]
    fn max_cycle_reflects_longest_device() {
        let mix = TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf32));
        let p = mix.generate(10, &mut StdRng::seed_from_u64(0)).unwrap();
        assert_eq!(p.max_cycle(), EdrxCycle::Hf32.duration());
    }

    #[test]
    fn empty_population_max_cycle_is_zero() {
        let p = Population::new("empty".into(), vec![], vec![]);
        assert_eq!(p.max_cycle(), SimDuration::ZERO);
        assert!(p.is_empty());
    }

    #[test]
    fn schedules_resolve_for_generated_population() {
        let p = pop(300);
        let schedules = p.schedules().unwrap();
        assert_eq!(schedules.len(), 300);
    }

    #[test]
    fn device_ids_are_sequential() {
        let p = pop(50);
        for (i, d) in p.devices().iter().enumerate() {
            assert_eq!(d.id.index(), i);
        }
    }

    #[test]
    fn display_is_informative() {
        let p = pop(5);
        let text = p.to_string();
        assert!(text.contains("5 devices"));
        assert!(text.contains("ericsson-city"));
    }

    #[test]
    fn filter_by_class_keeps_ids_and_membership() {
        let p = pop(400);
        let meters = p.filter_by_class("electricity-meter");
        assert!(!meters.is_empty());
        assert!(meters.len() < p.len());
        for d in meters.devices() {
            assert_eq!(p.class_name(d.class), "electricity-meter");
            // Original identity preserved.
            assert_eq!(p.devices()[d.id.index()].id, d.id);
        }
        assert!(p.filter_by_class("no-such-class").is_empty());
    }

    #[test]
    fn partition_covers_whole_population() {
        let p = pop(300);
        let parts = p.partition_by_class();
        let total: usize = parts.iter().map(|(_, sub)| sub.len()).sum();
        assert_eq!(total, p.len());
        for (name, sub) in &parts {
            assert!(sub.devices().iter().all(|d| p.class_name(d.class) == name));
        }
    }

    #[test]
    fn class_counts_sum_to_population() {
        let p = pop(250);
        let counts = p.class_counts();
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 250);
        assert_eq!(counts.len(), 7); // city mix classes
    }
}
