//! Traffic-model errors.

use core::fmt;

/// Errors produced when building or sampling a traffic mix.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrafficError {
    /// The mix has no classes.
    EmptyMix,
    /// A class has a non-positive share or cycle weight.
    NonPositiveWeight {
        /// Offending class name.
        class: String,
    },
    /// A class has no cycle options.
    NoCycles {
        /// Offending class name.
        class: String,
    },
    /// A paging configuration inside the mix is invalid.
    InvalidPaging(nbiot_time::TimeError),
    /// A churn rate is not a probability.
    InvalidChurnRate {
        /// Which rate (`"departure_rate"`, `"arrival_rate"`,
        /// `"handover_rate"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fleet event addressed a device that is not in the population.
    UnknownDevice {
        /// The missing device.
        device: crate::DeviceId,
    },
    /// A registration re-used a device id already in the population.
    DuplicateDevice {
        /// The colliding device.
        device: crate::DeviceId,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::EmptyMix => f.write_str("traffic mix has no device classes"),
            TrafficError::NonPositiveWeight { class } => {
                write!(f, "class {class} has a non-positive weight")
            }
            TrafficError::NoCycles { class } => {
                write!(f, "class {class} has no paging cycle options")
            }
            TrafficError::InvalidPaging(e) => write!(f, "invalid paging configuration: {e}"),
            TrafficError::InvalidChurnRate { what, value } => {
                write!(
                    f,
                    "churn {what} must be a probability in [0, 1], got {value}"
                )
            }
            TrafficError::UnknownDevice { device } => {
                write!(f, "fleet event addresses unknown device {device}")
            }
            TrafficError::DuplicateDevice { device } => {
                write!(f, "registration re-uses device id {device}")
            }
        }
    }
}

impl std::error::Error for TrafficError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrafficError::InvalidPaging(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nbiot_time::TimeError> for TrafficError {
    fn from(e: nbiot_time::TimeError) -> Self {
        TrafficError::InvalidPaging(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(TrafficError::EmptyMix
            .to_string()
            .contains("no device classes"));
        let e = TrafficError::NonPositiveWeight {
            class: "meters".into(),
        };
        assert!(e.to_string().contains("meters"));
    }
}
