//! Massive-IoT device population and traffic model.
//!
//! The paper evaluates "a single cell with realistic NB-IoT traffic
//! patterns based on [Ericsson, *Massive IoT in the City*]". What the
//! grouping mechanisms actually consume from that substrate is:
//!
//! 1. the **distribution of (e)DRX cycles** across the device population —
//!    which controls how often paging occasions of different devices fall
//!    close together (the whole game for DR-SC), and
//! 2. the **paging-occasion phases**, set by per-device UE identities, and
//! 3. a **background uplink reporting process** per device class (used by
//!    the random-access contention ablations).
//!
//! [`TrafficMix`] describes a population as weighted [`ClassSpec`]s;
//! [`TrafficMix::ericsson_city`] is the default city-scale mix of smart
//! meters, sensors, trackers and alarms, dominated by long eDRX cycles as
//! appropriate for 10-year-battery devices. [`Population`] is the generated
//! result, reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use nbiot_traffic::TrafficMix;
//! use rand::SeedableRng;
//!
//! let mix = TrafficMix::ericsson_city();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let pop = mix.generate(500, &mut rng)?;
//! assert_eq!(pop.len(), 500);
//! // The city mix is eDRX-heavy: most devices sleep for minutes or hours.
//! let edrx = pop.iter().filter(|d| d.paging.cycle.is_edrx()).count();
//! assert!(edrx > 400);
//! # Ok::<(), nbiot_traffic::TrafficError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod error;
mod mix;
mod population;
mod uplink;

pub use churn::{ChurnEvents, ChurnModel, FleetEvent};
pub use error::TrafficError;
pub use mix::{ClassSpec, TrafficMix};
pub use population::{ClassId, DeviceId, DeviceProfile, Population};
pub use uplink::poisson_arrivals;
