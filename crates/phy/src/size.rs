//! Payload sizes.

use core::fmt;

/// A payload size in bytes.
///
/// The paper evaluates firmware images of 100 kB, 1 MB and 10 MB
/// (decimal units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct DataSize(u64);

impl DataSize {
    /// Zero bytes.
    pub const ZERO: DataSize = DataSize(0);

    /// Creates a size of `bytes` bytes.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> DataSize {
        DataSize(bytes)
    }

    /// Creates a size of `kb` decimal kilobytes (1000 bytes each).
    #[inline]
    pub const fn from_kb(kb: u64) -> DataSize {
        DataSize(kb * 1_000)
    }

    /// Creates a size of `mb` decimal megabytes.
    #[inline]
    pub const fn from_mb(mb: u64) -> DataSize {
        DataSize(mb * 1_000_000)
    }

    /// Size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Size in bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}MB", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}kB", self.0 / 1_000)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(DataSize::from_kb(100).bytes(), 100_000);
        assert_eq!(DataSize::from_mb(10).bytes(), 10_000_000);
        assert_eq!(DataSize::from_bytes(3).bits(), 24);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(DataSize::from_kb(100).to_string(), "100kB");
        assert_eq!(DataSize::from_mb(1).to_string(), "1MB");
        assert_eq!(DataSize::from_bytes(42).to_string(), "42B");
        assert_eq!(DataSize::from_bytes(1500).to_string(), "1500B");
    }
}
