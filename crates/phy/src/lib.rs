//! NB-IoT downlink PHY model.
//!
//! The grouping mechanisms of the paper only interact with the physical
//! layer through two quantities:
//!
//! 1. **how long a payload occupies the narrowband downlink** — which sets
//!    the device's connected-mode (data reception) uptime and the cell's
//!    bandwidth cost per transmission, and
//! 2. **how many subframes signalling procedures consume** — paging, random
//!    access and RRC messages.
//!
//! This crate supplies both from first principles:
//!
//! * [`TbsTable`] — the Rel-13 NB-IoT downlink transport-block-size table
//!   (3GPP TS 36.213 Table 16.4.1.5.1-1, `ITBS 0..=13` × `NSF ∈ {1, 2, 3, 4,
//!   5, 6, 8, 10}`, max 2536 bits),
//! * [`CoverageClass`] — coverage-enhancement levels mapped to repetition
//!   factors,
//! * [`NpdschConfig`] / [`TransferPlan`] — per-transport-block airtime
//!   accounting (NPDCCH DCI + scheduling gap + NPDSCH subframes ×
//!   repetitions), turning a [`DataSize`] into a transfer duration,
//! * [`BandwidthLedger`] — subframe bookkeeping by traffic category, the
//!   basis of the paper's "number of multicast transmissions" bandwidth
//!   proxy (Fig. 7) and our additional airtime metrics.
//!
//! # Example
//!
//! ```
//! use nbiot_phy::{DataSize, NpdschConfig};
//!
//! let cfg = NpdschConfig::default();
//! let plan = cfg.plan_transfer(DataSize::from_kb(100));
//! // A 100 kB firmware image takes hundreds of transport blocks and tens
//! // of seconds on the NB-IoT downlink.
//! assert!(plan.blocks > 100);
//! assert!(plan.duration.as_secs_f64() > 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod coverage;
mod size;
mod tbs;
mod transfer;

pub use bandwidth::{BandwidthLedger, TrafficCategory};
pub use coverage::CoverageClass;
pub use size::DataSize;
pub use tbs::{Itbs, Nsf, TbsTable};
pub use transfer::{NpdschConfig, TransferPlan};
