//! Coverage-enhancement classes.

use core::fmt;

/// NB-IoT coverage-enhancement (CE) level.
///
/// Deep-coverage devices (basements, manholes) need every channel repeated;
/// the repetition factor multiplies all airtime and therefore both the
/// bandwidth cost and the connected-mode uptime of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CoverageClass {
    /// CE level 0: normal coverage (MCL ≤ 144 dB), no repetition.
    #[default]
    Normal,
    /// CE level 1: robust coverage (MCL ≤ 154 dB).
    Robust,
    /// CE level 2: extreme coverage (MCL ≤ 164 dB).
    Extreme,
}

impl CoverageClass {
    /// All classes, best coverage first.
    pub const ALL: [CoverageClass; 3] = [
        CoverageClass::Normal,
        CoverageClass::Robust,
        CoverageClass::Extreme,
    ];

    /// Default NPDSCH repetition factor for this class.
    #[inline]
    pub const fn repetitions(self) -> u32 {
        match self {
            CoverageClass::Normal => 1,
            CoverageClass::Robust => 8,
            CoverageClass::Extreme => 32,
        }
    }
}

impl fmt::Display for CoverageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CoverageClass::Normal => "CE0",
            CoverageClass::Robust => "CE1",
            CoverageClass::Extreme => "CE2",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetitions_grow_with_depth() {
        let reps: Vec<u32> = CoverageClass::ALL.iter().map(|c| c.repetitions()).collect();
        assert_eq!(reps, vec![1, 8, 32]);
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(CoverageClass::default(), CoverageClass::Normal);
    }
}
