//! NPDSCH transfer-time model.

use core::fmt;

use nbiot_time::SimDuration;

use crate::{CoverageClass, DataSize, Itbs, Nsf, TbsTable};

/// Downlink scheduling configuration for one NPDSCH data flow.
///
/// Every transport block costs, in subframes:
///
/// ```text
/// npdcch_subframes            (DCI carrying the DL grant)
/// + dci_to_data_gap           (TS 36.213 scheduling delay, >= 4)
/// + NSF * repetitions         (the NPDSCH itself)
/// + inter_block_gap           (HARQ turnaround / next-DCI spacing)
/// ```
///
/// The defaults model a good-coverage device with the largest Rel-13
/// transport block, yielding an effective rate of roughly 90 kbit/s — in
/// line with single-HARQ NB-IoT downlink throughput figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NpdschConfig {
    /// Modulation/TBS index.
    pub itbs: Itbs,
    /// NPDSCH subframes per transport block.
    pub nsf: Nsf,
    /// Coverage class: multiplies NPDCCH and NPDSCH subframes.
    pub coverage: CoverageClass,
    /// Subframes of NPDCCH per DCI (before repetition).
    pub npdcch_subframes: u32,
    /// Scheduling gap between DCI end and NPDSCH start, in subframes.
    pub dci_to_data_gap: u32,
    /// Gap after each transport block before the next DCI, in subframes.
    pub inter_block_gap: u32,
}

impl NpdschConfig {
    /// Creates a configuration with explicit MCS parameters and default
    /// gaps.
    pub fn new(itbs: Itbs, nsf: Nsf, coverage: CoverageClass) -> NpdschConfig {
        NpdschConfig {
            itbs,
            nsf,
            coverage,
            npdcch_subframes: 1,
            dci_to_data_gap: 4,
            inter_block_gap: 12,
        }
    }

    /// Transport block size in bits under this configuration.
    #[inline]
    pub fn tbs_bits(&self) -> u64 {
        TbsTable::tbs_bits(self.itbs, self.nsf)
    }

    /// Airtime of a single transport block, in subframes (= ms).
    pub fn block_airtime_subframes(&self) -> u64 {
        let rep = self.coverage.repetitions() as u64;
        (self.npdcch_subframes as u64) * rep
            + self.dci_to_data_gap as u64
            + (self.nsf.subframes() as u64) * rep
            + self.inter_block_gap as u64
    }

    /// Plans the transfer of `size` bytes: number of transport blocks and
    /// total airtime.
    pub fn plan_transfer(&self, size: DataSize) -> TransferPlan {
        let tbs = self.tbs_bits();
        let blocks = size
            .bits()
            .div_ceil(tbs)
            .max(if size.bits() == 0 { 0 } else { 1 });
        let per_block = self.block_airtime_subframes();
        let total_ms = blocks * per_block;
        TransferPlan {
            size,
            blocks,
            block_airtime: SimDuration::from_ms(per_block),
            duration: SimDuration::from_ms(total_ms),
        }
    }

    /// Effective goodput in bits per second.
    pub fn effective_rate_bps(&self) -> f64 {
        self.tbs_bits() as f64 / (self.block_airtime_subframes() as f64 / 1000.0)
    }
}

impl Default for NpdschConfig {
    /// Largest Rel-13 transport block (`I_TBS 13`, `N_SF 10`) in normal
    /// coverage.
    fn default() -> Self {
        NpdschConfig::new(
            Itbs::new(13).expect("13 is a valid I_TBS"),
            Nsf::new(10).expect("10 is a valid N_SF"),
            CoverageClass::Normal,
        )
    }
}

impl fmt::Display for NpdschConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} ({:.1} kbit/s)",
            self.itbs,
            self.nsf,
            self.coverage,
            self.effective_rate_bps() / 1000.0
        )
    }
}

/// The airtime footprint of one payload transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransferPlan {
    /// Payload size.
    pub size: DataSize,
    /// Number of transport blocks.
    pub blocks: u64,
    /// Airtime per block (including control overhead).
    pub block_airtime: SimDuration,
    /// Total transfer duration.
    pub duration: SimDuration,
}

impl TransferPlan {
    /// Effective goodput in bits per second.
    pub fn effective_rate_bps(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.size.bits() as f64 / self.duration.as_secs_f64()
        }
    }
}

impl fmt::Display for TransferPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} blocks, {} ({:.1} kbit/s)",
            self.size,
            self.blocks,
            self.duration,
            self.effective_rate_bps() / 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rate_is_plausible_nbiot() {
        // Single-HARQ Rel-13 NB-IoT downlink peaks below ~100 kbit/s
        // effective; sanity-check the model sits in 50..150 kbit/s.
        let rate = NpdschConfig::default().effective_rate_bps();
        assert!(
            (50_000.0..150_000.0).contains(&rate),
            "rate {rate} out of NB-IoT range"
        );
    }

    #[test]
    fn plan_covers_payload() {
        let cfg = NpdschConfig::default();
        let plan = cfg.plan_transfer(DataSize::from_kb(100));
        assert!(plan.blocks * cfg.tbs_bits() >= DataSize::from_kb(100).bits());
        assert!((plan.blocks - 1) * cfg.tbs_bits() < DataSize::from_kb(100).bits());
        assert_eq!(
            plan.duration.as_ms(),
            plan.blocks * cfg.block_airtime_subframes()
        );
    }

    #[test]
    fn zero_payload_needs_nothing() {
        let plan = NpdschConfig::default().plan_transfer(DataSize::ZERO);
        assert_eq!(plan.blocks, 0);
        assert!(plan.duration.is_zero());
        assert_eq!(plan.effective_rate_bps(), 0.0);
    }

    #[test]
    fn duration_scales_linearly_with_size() {
        let cfg = NpdschConfig::default();
        let d1 = cfg.plan_transfer(DataSize::from_mb(1)).duration.as_ms() as f64;
        let d10 = cfg.plan_transfer(DataSize::from_mb(10)).duration.as_ms() as f64;
        let ratio = d10 / d1;
        assert!((9.9..10.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deep_coverage_costs_more_airtime() {
        let normal = NpdschConfig::default();
        let mut deep = normal;
        deep.coverage = CoverageClass::Extreme;
        let payload = DataSize::from_kb(10);
        assert!(deep.plan_transfer(payload).duration > normal.plan_transfer(payload).duration * 10);
    }

    #[test]
    fn paper_data_sizes_have_sane_durations() {
        // 100 kB ~ seconds; 10 MB ~ tens of minutes on NB-IoT.
        let cfg = NpdschConfig::default();
        let d100k = cfg.plan_transfer(DataSize::from_kb(100)).duration;
        let d10m = cfg.plan_transfer(DataSize::from_mb(10)).duration;
        assert!((5.0..60.0).contains(&d100k.as_secs_f64()), "{d100k}");
        assert!((500.0..6000.0).contains(&d10m.as_secs_f64()), "{d10m}");
    }
}
