//! NB-IoT downlink transport block sizes.

use core::fmt;

/// Transport-block-size index (`I_TBS`), `0..=13` for Rel-13 NB-IoT
/// downlink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Itbs(u8);

impl Itbs {
    /// Highest Rel-13 downlink index.
    pub const MAX: Itbs = Itbs(13);

    /// Creates an index, returning `None` above 13.
    pub const fn new(index: u8) -> Option<Itbs> {
        if index <= 13 {
            Some(Itbs(index))
        } else {
            None
        }
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Itbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I_TBS {}", self.0)
    }
}

/// Number of NPDSCH subframes per transport block (`N_SF`), one of
/// {1, 2, 3, 4, 5, 6, 8, 10}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Nsf(u8);

impl Nsf {
    /// All valid values, ascending.
    pub const ALL: [Nsf; 8] = [
        Nsf(1),
        Nsf(2),
        Nsf(3),
        Nsf(4),
        Nsf(5),
        Nsf(6),
        Nsf(8),
        Nsf(10),
    ];

    /// Creates an `N_SF`, returning `None` for non-standard values.
    pub const fn new(subframes: u8) -> Option<Nsf> {
        match subframes {
            1 | 2 | 3 | 4 | 5 | 6 | 8 | 10 => Some(Nsf(subframes)),
            _ => None,
        }
    }

    /// Number of subframes.
    #[inline]
    pub const fn subframes(self) -> u8 {
        self.0
    }

    /// Column index into the TBS table.
    const fn column(self) -> usize {
        match self.0 {
            1 => 0,
            2 => 1,
            3 => 2,
            4 => 3,
            5 => 4,
            6 => 5,
            8 => 6,
            10 => 7,
            _ => unreachable!(),
        }
    }
}

impl fmt::Display for Nsf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N_SF {}", self.0)
    }
}

/// The Rel-13 NB-IoT downlink TBS table
/// (3GPP TS 36.213 Table 16.4.1.5.1-1), in bits.
///
/// Rows are `I_TBS 0..=13`, columns `N_SF ∈ {1, 2, 3, 4, 5, 6, 8, 10}`.
/// The largest Rel-13 downlink transport block is 2536 bits.
///
/// # Example
///
/// ```
/// use nbiot_phy::{Itbs, Nsf, TbsTable};
///
/// let bits = TbsTable::tbs_bits(Itbs::new(13).unwrap(), Nsf::new(10).unwrap());
/// assert_eq!(bits, 2536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TbsTable;

/// TBS values in bits, `[I_TBS][N_SF column]`.
const TBS_BITS: [[u64; 8]; 14] = [
    [16, 32, 56, 88, 120, 152, 208, 256],
    [24, 56, 88, 144, 176, 208, 256, 344],
    [32, 72, 144, 176, 208, 256, 328, 424],
    [40, 104, 176, 208, 256, 328, 440, 568],
    [56, 120, 208, 256, 328, 408, 552, 680],
    [72, 144, 224, 328, 424, 504, 680, 872],
    [88, 176, 256, 392, 504, 600, 808, 1032],
    [104, 224, 328, 472, 584, 712, 1000, 1224],
    [120, 256, 392, 536, 680, 808, 1096, 1352],
    [136, 296, 456, 616, 776, 936, 1256, 1544],
    [144, 328, 504, 680, 872, 1032, 1384, 1736],
    [176, 376, 584, 776, 1000, 1192, 1608, 2024],
    [208, 440, 680, 904, 1128, 1352, 1800, 2280],
    [224, 488, 744, 1032, 1256, 1544, 2024, 2536],
];

impl TbsTable {
    /// The transport block size in bits for the given index and subframe
    /// count.
    #[inline]
    pub fn tbs_bits(itbs: Itbs, nsf: Nsf) -> u64 {
        TBS_BITS[itbs.index() as usize][nsf.column()]
    }

    /// The largest transport block (bits) available at the given `I_TBS`.
    pub fn max_tbs_bits(itbs: Itbs) -> u64 {
        TBS_BITS[itbs.index() as usize][7]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_enforced() {
        assert!(Itbs::new(13).is_some());
        assert!(Itbs::new(14).is_none());
        assert!(Nsf::new(7).is_none());
        assert!(Nsf::new(10).is_some());
    }

    #[test]
    fn corner_values_match_standard() {
        let i0 = Itbs::new(0).unwrap();
        let i13 = Itbs::new(13).unwrap();
        let n1 = Nsf::new(1).unwrap();
        let n10 = Nsf::new(10).unwrap();
        assert_eq!(TbsTable::tbs_bits(i0, n1), 16);
        assert_eq!(TbsTable::tbs_bits(i0, n10), 256);
        assert_eq!(TbsTable::tbs_bits(i13, n1), 224);
        assert_eq!(TbsTable::tbs_bits(i13, n10), 2536);
    }

    #[test]
    fn tbs_monotone_in_both_axes() {
        for i in 0..=13u8 {
            let itbs = Itbs::new(i).unwrap();
            let row: Vec<u64> = Nsf::ALL
                .iter()
                .map(|&n| TbsTable::tbs_bits(itbs, n))
                .collect();
            for w in row.windows(2) {
                assert!(w[1] > w[0], "row {i} not increasing: {row:?}");
            }
        }
        for n in Nsf::ALL {
            let col: Vec<u64> = (0..=13u8)
                .map(|i| TbsTable::tbs_bits(Itbs::new(i).unwrap(), n))
                .collect();
            for w in col.windows(2) {
                assert!(w[1] > w[0], "column {n} not increasing: {col:?}");
            }
        }
    }

    #[test]
    fn max_tbs_is_last_column() {
        for i in 0..=13u8 {
            let itbs = Itbs::new(i).unwrap();
            assert_eq!(
                TbsTable::max_tbs_bits(itbs),
                TbsTable::tbs_bits(itbs, Nsf::new(10).unwrap())
            );
        }
    }
}
