//! Cell bandwidth accounting.

use core::fmt;

use nbiot_time::{SimDuration, SimInstant};

/// The category of traffic occupying downlink subframes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TrafficCategory {
    /// Paging messages on the paging channel.
    Paging,
    /// Random-access exchange (MSG2/MSG4 downlink part).
    RandomAccess,
    /// Dedicated RRC signalling (setup, reconfiguration, release).
    RrcSignalling,
    /// Multicast payload transmissions.
    MulticastData,
    /// Unicast payload transmissions.
    UnicastData,
    /// SC-PTM control channel (SC-MCCH) occupancy.
    ScPtmControl,
}

impl TrafficCategory {
    /// All categories, in reporting order.
    pub const ALL: [TrafficCategory; 6] = [
        TrafficCategory::Paging,
        TrafficCategory::RandomAccess,
        TrafficCategory::RrcSignalling,
        TrafficCategory::MulticastData,
        TrafficCategory::UnicastData,
        TrafficCategory::ScPtmControl,
    ];

    const fn slot(self) -> usize {
        match self {
            TrafficCategory::Paging => 0,
            TrafficCategory::RandomAccess => 1,
            TrafficCategory::RrcSignalling => 2,
            TrafficCategory::MulticastData => 3,
            TrafficCategory::UnicastData => 4,
            TrafficCategory::ScPtmControl => 5,
        }
    }
}

impl fmt::Display for TrafficCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TrafficCategory::Paging => "paging",
            TrafficCategory::RandomAccess => "random-access",
            TrafficCategory::RrcSignalling => "rrc-signalling",
            TrafficCategory::MulticastData => "multicast-data",
            TrafficCategory::UnicastData => "unicast-data",
            TrafficCategory::ScPtmControl => "sc-ptm-control",
        };
        f.write_str(name)
    }
}

/// Downlink subframe bookkeeping for a cell.
///
/// NB-IoT has a single 180 kHz carrier: one subframe can carry one thing.
/// The ledger accumulates subframes per [`TrafficCategory`] so experiments
/// can report both the paper's transmission-count proxy and actual airtime
/// utilization.
///
/// # Example
///
/// ```
/// use nbiot_phy::{BandwidthLedger, TrafficCategory};
/// use nbiot_time::SimDuration;
///
/// let mut ledger = BandwidthLedger::new();
/// ledger.record(TrafficCategory::Paging, SimDuration::from_ms(2));
/// ledger.record(TrafficCategory::MulticastData, SimDuration::from_ms(500));
/// assert_eq!(ledger.total().as_ms(), 502);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BandwidthLedger {
    subframes: [u64; 6],
}

impl BandwidthLedger {
    /// Creates an empty ledger.
    pub fn new() -> BandwidthLedger {
        BandwidthLedger::default()
    }

    /// Records `airtime` of `category` traffic.
    pub fn record(&mut self, category: TrafficCategory, airtime: SimDuration) {
        self.subframes[category.slot()] += airtime.as_ms();
    }

    /// Airtime accumulated for one category.
    pub fn airtime(&self, category: TrafficCategory) -> SimDuration {
        SimDuration::from_ms(self.subframes[category.slot()])
    }

    /// Total downlink airtime across all categories.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_ms(self.subframes.iter().sum())
    }

    /// Fraction of the downlink occupied over the horizon `[start, end)`.
    ///
    /// Returns 0 for an empty horizon.
    pub fn utilization(&self, start: SimInstant, end: SimInstant) -> f64 {
        let horizon = end.saturating_duration_since(start);
        if horizon.is_zero() {
            0.0
        } else {
            self.total().as_ms() as f64 / horizon.as_ms() as f64
        }
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &BandwidthLedger) {
        for (a, b) in self.subframes.iter_mut().zip(other.subframes.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for BandwidthLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for cat in TrafficCategory::ALL {
            let t = self.airtime(cat);
            if !t.is_zero() {
                if !first {
                    f.write_str(", ")?;
                }
                write!(f, "{cat}: {t}")?;
                first = false;
            }
        }
        if first {
            f.write_str("empty ledger")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_category() {
        let mut l = BandwidthLedger::new();
        l.record(TrafficCategory::Paging, SimDuration::from_ms(1));
        l.record(TrafficCategory::Paging, SimDuration::from_ms(2));
        l.record(TrafficCategory::UnicastData, SimDuration::from_ms(10));
        assert_eq!(l.airtime(TrafficCategory::Paging).as_ms(), 3);
        assert_eq!(l.airtime(TrafficCategory::UnicastData).as_ms(), 10);
        assert_eq!(l.airtime(TrafficCategory::MulticastData).as_ms(), 0);
        assert_eq!(l.total().as_ms(), 13);
    }

    #[test]
    fn utilization_is_fraction_of_horizon() {
        let mut l = BandwidthLedger::new();
        l.record(TrafficCategory::MulticastData, SimDuration::from_ms(250));
        let u = l.utilization(SimInstant::ZERO, SimInstant::from_ms(1000));
        assert!((u - 0.25).abs() < 1e-12);
        assert_eq!(l.utilization(SimInstant::ZERO, SimInstant::ZERO), 0.0);
    }

    #[test]
    fn merge_sums_all_categories() {
        let mut a = BandwidthLedger::new();
        a.record(TrafficCategory::Paging, SimDuration::from_ms(5));
        let mut b = BandwidthLedger::new();
        b.record(TrafficCategory::Paging, SimDuration::from_ms(7));
        b.record(TrafficCategory::RandomAccess, SimDuration::from_ms(3));
        a.merge(&b);
        assert_eq!(a.airtime(TrafficCategory::Paging).as_ms(), 12);
        assert_eq!(a.airtime(TrafficCategory::RandomAccess).as_ms(), 3);
    }

    #[test]
    fn display_mentions_used_categories_only() {
        let mut l = BandwidthLedger::new();
        assert_eq!(l.to_string(), "empty ledger");
        l.record(TrafficCategory::ScPtmControl, SimDuration::from_ms(4));
        let text = l.to_string();
        assert!(text.contains("sc-ptm-control"));
        assert!(!text.contains("paging"));
    }
}
