//! Quickstart: plan and simulate one multicast campaign with each of the
//! paper's three mechanisms, and print what each one trades away.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nbiot_multicast::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A single NB-IoT cell serving a city-scale device mix: street lights
    // and alarm panels on short reachability cycles, meters on multi-hour
    // eDRX.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let population = TrafficMix::ericsson_city().generate(200, &mut rng)?;
    println!("population: {population}");

    // The multicast job: deliver a 100 kB firmware image to every device.
    let input = GroupingInput::from_population(&population, GroupingParams::default())?;
    let config = SimConfig::default(); // 100 kB payload, best-MCS NPDSCH

    println!(
        "\n{:<8} {:>4} {:>12} {:>14} {:>14} {:>10}",
        "mech", "tx", "mean wait", "light-sleep", "connected", "compliant"
    );
    for kind in MechanismKind::ALL {
        let mechanism = kind.instantiate();
        let result = run_campaign(mechanism.as_ref(), &input, &config, &mut rng)?;
        println!(
            "{:<8} {:>4} {:>12} {:>12}ms {:>12}ms {:>10}",
            result.mechanism,
            result.transmission_count,
            result.mean_wait.to_string(),
            format!("{:.0}", result.mean_light_sleep_ms()),
            format!("{:.0}", result.mean_connected_ms()),
            if result.standards_compliant {
                "yes"
            } else {
                "no"
            },
        );
    }

    println!(
        "\nDR-SC respects every DRX cycle but needs many transmissions;\n\
         DA-SC and DR-SI deliver everything in one transmission — DA-SC by\n\
         temporarily shortening DRX cycles (standards-compliant), DR-SI by\n\
         extending the paging message (not standards-compliant)."
    );
    Ok(())
}
