//! The DR-SC set-cover formulation, hands-on: reconstructs the paper's
//! Fig. 3 bipartite instance, solves it with the greedy heuristic, then
//! runs the windowed solver on a realistic PO timeline so you can watch
//! the greedy pick transmission windows (the Fig. 4 walkthrough).
//!
//! Both calls go through the production incremental-gain kernels; the
//! solver tiers and their equivalence guarantees are documented in
//! `docs/KERNELS.md`.
//!
//! ```text
//! cargo run --release --example set_cover_playground
//! ```

use nbiot_multicast::grouping::set_cover::{greedy_set_cover, WindowCover};
use nbiot_multicast::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: the paper's Fig. 3 instance ----
    // Five devices with POs on six frames; TI = one frame. The minimum set
    // of frames covering every device is {frame 4, frame 5}.
    println!("Fig. 3 bipartite instance:");
    let frames: Vec<(u32, Vec<usize>)> = vec![
        (1, vec![0]),
        (2, vec![1]),
        (3, vec![3]),
        (4, vec![0, 1, 2]),
        (5, vec![3, 4]),
        (6, vec![2]),
    ];
    for (frame, devices) in &frames {
        println!(
            "  frame {frame}: devices {:?}",
            devices.iter().map(|d| d + 1).collect::<Vec<_>>()
        );
    }
    let sets: Vec<Vec<usize>> = frames.iter().map(|(_, d)| d.clone()).collect();
    let picked = greedy_set_cover(5, &sets).expect("coverable");
    println!(
        "  greedy picks frames {:?} (paper: optimal is frames 4 and 5)\n",
        picked.iter().map(|i| frames[*i].0).collect::<Vec<_>>()
    );

    // ---- Part 2: the windowed solver on a live PO timeline (Fig. 4) ----
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let population = TrafficMix::ericsson_city().generate(12, &mut rng)?;
    let ti = SimDuration::from_secs(10);
    let horizon = TimeWindow::starting_at(SimInstant::ZERO, SimDuration::from_secs(2 * 21_000));

    let mut events = Vec::new();
    let mut dense = Vec::new();
    println!("12-device timeline (TI = {ti}):");
    for device in population.iter() {
        let schedule = device.schedule()?;
        let is_dense = device.paging.cycle.period() <= ti;
        dense.push(is_dense);
        let pos = if is_dense {
            vec![]
        } else {
            schedule.pos_in(horizon)
        };
        println!(
            "  {}: cycle {}, {} POs in horizon{}",
            device.id,
            device.paging.cycle,
            pos.len(),
            if is_dense {
                " (dense: every window covers it)"
            } else {
                ""
            },
        );
        events.push(pos);
    }

    let slots = WindowCover::new(ti)
        .solve(horizon.start(), &events, &dense)
        .expect("coverable");
    println!("\ngreedy cover -> {} transmissions:", slots.len());
    for (i, slot) in slots.iter().enumerate() {
        println!(
            "  #{:<2} window [{} .. {}) covers {:?}",
            i + 1,
            slot.window_start,
            slot.transmit_at,
            slot.covered
                .iter()
                .map(|d| format!("dev{d}"))
                .collect::<Vec<_>>()
        );
    }
    println!("\n(each transmission reaches the devices paged inside its window,");
    println!(" exactly the iterative procedure of the paper's Fig. 4)");
    Ok(())
}
