//! Firmware rollout planning: a mobile network operator must push a 1 MB
//! firmware image to every electricity meter in a cell and wants to know,
//! *before* committing, what each grouping mechanism will cost in downlink
//! airtime and device battery.
//!
//! This is the paper's motivating scenario (Sec. I): 10-year-battery
//! devices that still need occasional security updates.
//!
//! ```text
//! cargo run --release --example firmware_campaign
//! ```

use nbiot_multicast::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // The update targets one device model: a metering population on the
    // longest eDRX cycle (10485.76 s — ~175 min, the deepest sleep the
    // standard allows).
    let meters = TrafficMix::uniform(PagingCycle::edrx(EdrxCycle::Hf1024));
    let population = meters.generate(500, &mut rng)?;

    let input = GroupingInput::from_population(&population, GroupingParams::default())?;
    let firmware = DataSize::from_mb(1);
    let config = SimConfig::default().with_payload(firmware);
    let profile = PowerProfile::default();

    let transfer = config.npdsch.plan_transfer(firmware);
    println!("firmware image : {firmware}");
    println!("one transfer   : {transfer}");
    println!(
        "group          : {} meters, cycle 175 min",
        population.len()
    );
    println!(
        "earliest single-transmission instant (2 x maxDRX): {}\n",
        input.default_transmission_time()
    );

    println!(
        "{:<8} {:>6} {:>16} {:>18} {:>16}",
        "mech", "tx", "data airtime", "battery (mJ/dev)", "campaign ends"
    );
    let mut unicast_airtime = None;
    for kind in [
        MechanismKind::Unicast,
        MechanismKind::DrSc,
        MechanismKind::DaSc,
        MechanismKind::DrSi,
    ] {
        let result = run_campaign(kind.instantiate().as_ref(), &input, &config, &mut rng)?;
        let airtime = result.data_airtime();
        if kind == MechanismKind::Unicast {
            unicast_airtime = Some(airtime);
        }
        let saving = unicast_airtime
            .map(|u| 100.0 * (1.0 - airtime.as_ms() as f64 / u.as_ms() as f64))
            .unwrap_or(0.0);
        println!(
            "{:<8} {:>6} {:>10} ({saving:>4.0}%) {:>18.1} {:>16}",
            result.mechanism,
            result.transmission_count,
            airtime.to_string(),
            result.mean_energy_mj(&profile),
            result.horizon.end().to_string(),
        );
    }

    println!(
        "\nWith every meter on the same 175-minute cycle, DR-SC finds few\n\
         shareable windows, so its airtime stays close to unicast — exactly\n\
         the paper's conclusion that DR-SC is impractical. DA-SC and DR-SI\n\
         spend one transfer's worth of airtime, a ~99.8% saving."
    );
    Ok(())
}
