//! Capacity planning with the fluid model: before running any simulation,
//! predict how many DR-SC transmissions a rollout will need — then verify
//! the prediction against the simulator.
//!
//! This mirrors how an operator would use the library interactively: the
//! analytic estimate is instant, the simulation confirms it.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use nbiot_multicast::grouping::analysis;
use nbiot_multicast::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mix = TrafficMix::ericsson_city();
    println!("rollout capacity planning (mix: {mix})\n");
    println!(
        "{:>8} {:>8} {:>8} {:>14} {:>12} {:>10}",
        "devices", "dense", "sparse", "fluid estimate", "simulated", "error"
    );

    for n in [100usize, 250, 500, 1000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        let population = mix.generate(n, &mut rng)?;
        let input = GroupingInput::from_population(&population, GroupingParams::default())?;

        // Instant: the fluid prediction.
        let estimate = analysis::estimate_dr_sc_transmissions(&input);

        // Ground truth: average the greedy set cover over a few seeds.
        let mut simulated = 0.0;
        let seeds = 5;
        for s in 0..seeds {
            let pop = mix.generate(n, &mut rand::rngs::StdRng::seed_from_u64(1000 + s))?;
            let input = GroupingInput::from_population(&pop, GroupingParams::default())?;
            let plan = DrSc::new().plan(&input, &mut rng)?;
            simulated += plan.transmission_count() as f64 / seeds as f64;
        }

        let error = (estimate.transmissions - simulated).abs() / simulated;
        println!(
            "{:>8} {:>8} {:>8} {:>14.1} {:>12.1} {:>9.1}%",
            n,
            estimate.dense_devices,
            estimate.sparse_devices,
            estimate.transmissions,
            simulated,
            error * 100.0
        );
    }

    println!(
        "\nThe fluid model (one Euler step per transmission, anchor + p·n\n\
         expected coverage) predicts the Fig. 7 curve without running the\n\
         set cover; see nbiot_grouping::analysis for its assumptions."
    );
    Ok(())
}
