//! Full mechanism comparison using the paper's methodology: identical
//! populations per run, unicast as the energy baseline, averaged over
//! repeated runs — a miniature of the evaluation section, including the
//! SC-PTM baseline the paper argues against.
//!
//! ```text
//! cargo run --release --example mechanism_comparison
//! ```

use nbiot_multicast::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        n_devices: 300,
        runs: 20,
        ..ExperimentConfig::default()
    };

    println!(
        "comparing mechanisms on {} devices over {} runs (mix: ericsson-city)\n",
        config.n_devices, config.runs
    );
    let comparison = run_comparison(&config, &MechanismKind::ALL)?;

    println!(
        "{:<8} {:>16} {:>16} {:>14} {:>12} {:>10}",
        "mech", "light-sleep incr", "connected incr", "transmissions", "wait (s)", "compliant"
    );
    for m in &comparison.mechanisms {
        println!(
            "{:<8} {:>15.3}% {:>15.2}% {:>14.1} {:>12.1} {:>10}",
            m.mechanism,
            m.rel_light_sleep.mean * 100.0,
            m.rel_connected.mean * 100.0,
            m.transmissions.mean,
            m.mean_wait_s.mean,
            if m.standards_compliant { "yes" } else { "no" },
        );
    }

    println!("\nReadout (matches the paper's conclusions):");
    println!(" * DR-SC: zero extra sleep energy, but transmission count near the group size");
    println!(" * DA-SC: single transmission, small uptime overhead, fully standards-compliant");
    println!("   -> the paper's recommended trade-off");
    println!(" * DR-SI: best of both, but needs a protocol change (non-compliant)");
    println!(" * SC-PTM: pays continuous SC-MCCH monitoring whether or not anything is sent");
    Ok(())
}
