//! Derive macros for the vendored `serde` stand-in.
//!
//! Generates the same externally-tagged shape real serde produces by
//! default: structs become objects, newtype structs unwrap to their inner
//! value, unit enum variants become strings, payload variants become
//! single-entry objects. Parsing is hand-rolled over `proc_macro` token
//! trees (no `syn`/`quote` available offline); generics are not supported —
//! no serialized type in this workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum TypeDef {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize`.
///
/// The `serde` helper attribute is accepted and ignored: the only form this
/// workspace uses is `#[serde(transparent)]` on newtype structs, which is
/// already this derive's default newtype behaviour.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_serialize(&def)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ----

fn parse_type(input: TokenStream) -> TypeDef {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility up to `struct` / `enum`.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) => {
                let text = id.to_string();
                if text == "struct" || text == "enum" {
                    break text;
                }
                // `pub` (possibly followed by a `(crate)` group) — skip.
                if text == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("derive input without struct/enum keyword"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic type `{name}`");
        }
    }
    if kind == "struct" {
        let fields = match tokens.next() {
            None => Fields::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            other => panic!("unexpected token after struct name: {other:?}"),
        };
        TypeDef::Struct { name, fields }
    } else {
        let body = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            Some(other) => panic!("unexpected token in enum `{name}`: {other:?}"),
            None => panic!("enum `{name}` without a body"),
        };
        TypeDef::Enum {
            name,
            variants: parse_variants(body.stream()),
        }
    }
}

/// Counts the top-level comma-separated fields of a tuple struct/variant,
/// tracking `<`/`>` nesting so `BTreeMap<K, V>` counts as one field.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut in_field = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                in_field = false;
                continue;
            }
            _ => {}
        }
        if !in_field {
            in_field = true;
            fields += 1;
        }
    }
    fields
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        // Skip attributes and visibility.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in field list: {other:?}"),
                None => return names,
            }
        };
        names.push(name);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => return names,
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in enum body: {other:?}"),
                None => return variants,
            }
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                tokens.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => break,
            }
        }
        variants.push(Variant { name, fields });
    }
}

// ---- code generation ----

fn gen_serialize(def: &TypeDef) -> String {
    match def {
        TypeDef::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(k) => {
                    let items: Vec<String> = (0..*k)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(names) => object_literal(names.iter().map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => {},",
                            tagged(vname, "::serde::Serialize::to_value(f0)")
                        ),
                        Fields::Tuple(k) => {
                            let binds: Vec<String> = (0..*k).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => {},",
                                binds.join(", "),
                                tagged(
                                    vname,
                                    &format!(
                                        "::serde::Value::Array(::std::vec![{}])",
                                        items.join(", ")
                                    )
                                )
                            )
                        }
                        Fields::Named(fields) => {
                            let body = object_literal(fields.iter().map(|f| {
                                (f.clone(), format!("::serde::Serialize::to_value({f})"))
                            }));
                            format!(
                                "{name}::{vname} {{ {} }} => {},",
                                fields.join(", "),
                                tagged(vname, &body)
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(def: &TypeDef) -> String {
    let body = match def {
        TypeDef::Struct { name, fields } => match fields {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
            ),
            Fields::Tuple(k) => {
                let items: Vec<String> = (0..*k)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = value.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                     if items.len() != {k} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple arity for {name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Fields::Named(names) => {
                let fields: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::field(entries, \"{f}\")?)?,"
                        )
                    })
                    .collect();
                format!(
                    "let entries = value.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    fields.join("\n")
                )
            }
        },
        TypeDef::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    let build = match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(body)?))"
                        ),
                        Fields::Tuple(k) => {
                            let items: Vec<String> = (0..*k)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "let items = body.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected array for {name}::{vname}\"))?;\n\
                                 if items.len() != {k} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                         \"wrong arity for {name}::{vname}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))",
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(entries, \"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            format!(
                                "let entries = body.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected object for {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})",
                                inits.join("\n")
                            )
                        }
                    };
                    format!("\"{vname}\" => {{ {build} }},")
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, body) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unexpected value {{other:?}} for {name}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    let name = match def {
        TypeDef::Struct { name, .. } | TypeDef::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn object_literal(entries: impl Iterator<Item = (String, String)>) -> String {
    let items: Vec<String> = entries
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

fn tagged(variant: &str, body: &str) -> String {
    format!(
        "::serde::Value::Object(::std::vec![\
         (::std::string::String::from(\"{variant}\"), {body})])"
    )
}
