//! Offline, dependency-free stand-in for
//! [`criterion`](https://crates.io/crates/criterion): the `Criterion` /
//! `BenchmarkGroup` / `Bencher` API subset this workspace's benches use,
//! measured with plain wall-clock timing.
//!
//! No statistical machinery — each benchmark is auto-calibrated to a target
//! measurement time, then reports mean ns/iter over a few samples (with the
//! min/max spread). Honest enough to track order-of-magnitude perf
//! trajectories in CI logs; not a substitute for upstream criterion's
//! analysis.

#![forbid(unsafe_code)]

use core::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Runs the timed closure of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    measured: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, auto-calibrating the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that runs ~50ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || iters >= 1 << 30 {
                break;
            }
            iters = if elapsed < Duration::from_micros(50) {
                iters * 128
            } else {
                iters * 2
            };
        }
        // Measure.
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            self.measured.push(ns);
        }
    }

    fn report(&self, label: &str) {
        if self.measured.is_empty() {
            println!("{label:<40} (no measurement)");
            return;
        }
        let mean = self.measured.iter().sum::<f64>() / self.measured.len() as f64;
        let min = self.measured.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self
            .measured
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{label:<40} {:>14}/iter (min {}, max {})",
            format_ns(mean),
            format_ns(min),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    samples: u32,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour the substring filter `cargo bench -- <filter>` passes.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { samples: 5, filter }
    }
}

impl Criterion {
    fn enabled(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, mut f: F) {
        if !self.enabled(label) {
            return;
        }
        let mut bencher = Bencher {
            samples: self.samples,
            measured: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(label);
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (kept for API compatibility).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.samples = (samples as u32).clamp(2, 100);
        self
    }

    /// Benchmarks one function with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion {
            samples: 2,
            filter: None,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_filters() {
        let mut c = Criterion {
            samples: 2,
            filter: Some("match-me".into()),
        };
        let mut matched = false;
        let mut skipped = false;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("match-me", 1), &1, |b, _| {
            b.iter(|| black_box(0));
            matched = true;
        });
        g.bench_with_input(BenchmarkId::new("other", 1), &1, |b, _| {
            b.iter(|| black_box(0));
            skipped = true;
        });
        g.finish();
        assert!(matched);
        assert!(!skipped);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
    }
}
