//! Offline, dependency-free stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal self-describing implementation: types serialize into a JSON-like
//! [`Value`] tree and deserialize back from it. The derive macros
//! (`#[derive(Serialize, Deserialize)]`, re-exported from the vendored
//! `serde_derive`) generate the same externally-tagged representation real
//! serde uses by default, so archived JSON keeps the familiar shape.
//!
//! Only the API surface this workspace touches is provided: the `Serialize`
//! and `Deserialize` traits (with much simpler signatures than upstream),
//! `de::DeserializeOwned`, and impls for the primitives and std containers
//! the workspace serializes.

#![forbid(unsafe_code)]

use core::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (a JSON document model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, when this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can serialize itself into a [`Value`].
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from `value`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first shape/range mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Upstream-compatible module path for the owned-deserialization bound.
pub mod de {
    /// Marker for types deserializable without borrowing from the input —
    /// every [`Deserialize`](crate::Deserialize) in this model.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Looks up a field in an object body (derive-macro support).
///
/// # Errors
///
/// Returns an [`Error`] naming the missing field.
pub fn field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---- primitive impls ----

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match *value {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| Error::custom(format!("{x} out of range for i64")))?,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {value:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        T::to_value(self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected {N}-element array, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom(format!(
                "expected 2-element array, got {value:?}"
            ))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => render_key(&other),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {value:?}")))?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Renders a non-string [`Value`] as an object key (map keys must be strings
/// in the JSON model).
fn render_key(v: &Value) -> String {
    match v {
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hello".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = Some(9);
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&n.to_value()).unwrap(), n);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }
}
