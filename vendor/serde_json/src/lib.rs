//! Offline, dependency-free stand-in for
//! [`serde_json`](https://crates.io/crates/serde_json): JSON text encoding
//! and decoding over the vendored `serde` [`Value`] model.
//!
//! Numbers roundtrip exactly: floats are printed with Rust's
//! shortest-roundtrip formatting and reparsed with `str::parse::<f64>`,
//! both of which are exact inverses.

#![forbid(unsafe_code)]

use core::fmt;
use std::str::Chars;

pub use serde::Value;
use serde::{de::DeserializeOwned, Serialize};

/// JSON encoding/decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Infallible in this model; the `Result` mirrors the upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Infallible in this model; the `Result` mirrors the upstream signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value_text(text)?;
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] object from `"key": expr` pairs; every value position
/// accepts anything implementing the vendored `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::to_value(&$item)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val))),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---- encoding ----

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; mirror upstream's lossy `null`.
        out.push_str("null");
        return;
    }
    let text = format!("{x}");
    out.push_str(&text);
    // Keep the float/integer distinction through a text roundtrip.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- decoding ----

struct Parser<'a> {
    chars: std::iter::Peekable<Chars<'a>>,
}

fn parse_value_text(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        chars: text.chars().peekable(),
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.chars.peek().is_some() {
        return Err(Error("trailing characters after JSON value".into()));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), Error> {
        match self.chars.next() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(Error(format!("expected `{c}`, got `{got}`"))),
            None => Err(Error(format!("expected `{c}`, got end of input"))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(Value::Str(self.parse_string()?)),
            Some('t') => self.parse_keyword("true", Value::Bool(true)),
            Some('f') => self.parse_keyword("false", Value::Bool(false)),
            Some('n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!("unexpected character `{c}`"))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        for expected in word.chars() {
            self.expect(expected)?;
        }
        Ok(value)
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect('{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&'}') {
            self.chars.next();
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Object(entries)),
                other => return Err(Error(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&']') {
            self.chars.next();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.chars.next() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Array(items)),
                other => return Err(Error(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.chars.next() {
                Some('"') => return Ok(s),
                Some('\\') => match self.chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self
                                .chars
                                .next()
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or_else(|| Error(format!("bad hex digit `{c}`")))?;
                        }
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error(format!("bad codepoint {code}")))?,
                        );
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                },
                Some(c) => s.push(c),
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                text.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|x| Value::I64(-(x as i64)))
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, 5e-324, 123456.789, -0.25] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn whole_floats_keep_their_type() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let v: Value = from_str(&text).unwrap();
        assert_eq!(v, Value::F64(2.0));
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_pretty_parses_back() {
        let v = json!({
            "name": "test",
            "items": [1u64, 2u64, 3u64],
            "nested": 0.5,
        });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"open").is_err());
    }
}
