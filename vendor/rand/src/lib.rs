//! Offline, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing exactly the API subset this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal implementation instead: the [`RngCore`] / [`SeedableRng`] /
//! [`Rng`] traits, a [`rngs::StdRng`] generator (xoshiro256++ seeded via
//! SplitMix64), uniform range sampling and the [`distributions::Standard`]
//! distribution.
//!
//! The stream values differ from upstream `rand`'s ChaCha-based `StdRng`;
//! everything in this workspace only relies on determinism and statistical
//! quality, never on specific upstream values.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with SplitMix64,
    /// mirroring upstream `rand`'s `seed_from_u64` construction.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small, fast and statistically strong; not cryptographic (nothing in
    /// this workspace needs a CSPRNG).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// Value distributions.
pub mod distributions {
    use super::RngCore;

    /// A distribution of values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" full-range distribution of the primitive types
    /// (`[0, 1)` for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_uint {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[inline]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        /// Uniform in `[0, 1)` with 53 random mantissa bits.
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// A range that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + draw
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + draw
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`start..end` or `start..=end`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Samples a value from `distr`.
    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// An iterator of samples from `distr`.
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        DistIter {
            distr,
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Iterator returned by [`Rng::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: core::marker::PhantomData<T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples should cover the unit interval");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: u64 = dynrng.gen_range(0..100);
        assert!(x < 100);
        let _ = dynrng.gen_bool(0.5);
    }

    #[test]
    fn sample_iter_streams() {
        let rng = StdRng::seed_from_u64(6);
        let xs: Vec<u64> = rng.sample_iter(Standard).take(4).collect();
        assert_eq!(xs.len(), 4);
    }
}
