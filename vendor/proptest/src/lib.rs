//! Offline, dependency-free stand-in for
//! [`proptest`](https://crates.io/crates/proptest), providing the subset this
//! workspace's property tests use: the [`proptest!`] macro, range/collection/
//! sample strategies, `prop_oneof!`, `Just`, `prop_map`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! reproduction seed instead), and generation is driven by the vendored
//! deterministic `rand::rngs::StdRng` so failures reproduce exactly.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a property-test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The per-case result type produced by [`proptest!`] bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.new_value(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between several strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies.
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s with a random length from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy choosing one element of `options` uniformly.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].clone()
        }
    }
}

/// The common imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Runs `cases` random cases of a property (support code for [`proptest!`]).
///
/// Each case gets a deterministic RNG derived from the test name and case
/// index, so any failure message's `seed` reproduces exactly.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    for index in 0..config.cases {
        let seed = derive_seed(test_name, index);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "property failed at case {index}/{} (seed {seed:#x}): {e}",
                config.cases
            );
        }
    }
}

fn derive_seed(test_name: &str, index: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash ^ ((index as u64) << 32 | index as u64)
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name ( $($arg in $strategy),+ ) $body)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "{} ({:?} != {:?})",
                ::std::format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_and_tuples(x in 0u64..100, pair in (1u32..5, 10usize..20)) {
            prop_assert!(x < 100);
            prop_assert!((1..5).contains(&pair.0));
            prop_assert!((10..20).contains(&pair.1));
        }

        fn collections_and_select(
            v in crate::collection::vec(0u8..10, 1..6),
            pick in crate::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(["a", "b", "c"].contains(&pick));
        }

        fn oneof_and_map(
            val in prop_oneof![Just(1u32), Just(2u32), 10u32..20].prop_map(|x| x * 2)
        ) {
            prop_assert!(val == 2 || val == 4 || (20..40).contains(&val));
            prop_assert_eq!(val % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_seed() {
        crate::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(1),
            |_rng| -> TestCaseResult { Err(TestCaseError("nope".into())) },
        );
    }
}
