#!/usr/bin/env bash
# CI pipeline: build, test, lint, and a bench_report smoke run.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root crate)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> figures --scenario smoke (named scenario + TOML file round-trip)"
SMOKE_SCN="$(mktemp /tmp/figures_smoke.XXXXXX.toml)"
trap 'rm -f "$SMOKE_SCN"' EXIT
cargo run --release -q -p nbiot-bench --bin figures -- --list > /dev/null
cargo run --release -q -p nbiot-bench --bin figures -- \
    --scenario fig6a --dump toml > "$SMOKE_SCN"
# The dumped template must load back and execute with CLI overrides.
cargo run --release -q -p nbiot-bench --bin figures -- \
    --scenario "$SMOKE_SCN" --runs 2 --devices 30 --threads 2 > /dev/null
cargo run --release -q -p nbiot-bench --bin figures -- \
    --scenario bursty-alarm --runs 2 --devices 30 --json > /dev/null
echo "figures smoke OK"

echo "==> bench_report smoke (tiny parameters, temp output)"
SMOKE_JSON="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
trap 'rm -f "$SMOKE_JSON" "$SMOKE_SCN"' EXIT
# --out keeps the smoke run's tiny numbers out of the default
# BENCH_results.json scratch path (the committed full-workload snapshot
# lives in BENCH_baseline.json).
cargo run --release -q -p nbiot-bench --bin bench_report -- \
    --runs 2 --devices 40 --out "$SMOKE_JSON" > /dev/null
test -s "$SMOKE_JSON"
echo "smoke report written:"
grep -A4 '"derived"' "$SMOKE_JSON"

echo "==> CI OK"
