#!/usr/bin/env bash
# CI pipeline, shared verbatim by local runs and .github/workflows/ci.yml.
#
# Usage:
#   ./ci.sh                      # run every stage in order
#   ./ci.sh --stage <name>       # run one stage (what the workflow matrix does)
#   ./ci.sh --list               # list stage names
#
# Stages:
#   build          cargo build --release (whole workspace)
#   test           tier-1 root-crate tests, then the whole workspace
#   lint           clippy with -D warnings across all targets
#   fmt            cargo fmt --check (no formatting drift)
#   docs           cargo doc --no-deps warning-free (offline) + README
#                  quick-start commands cross-checked against --help
#   figures-smoke  figures driver smoke: registry, TOML round-trip, JSON,
#                  churned-family execution (mobility-churn reload)
#   shard-smoke    3-way shard -> merge -> zero-tolerance scenario_diff
#                  against the unsharded run (bit-identity gate)
#   golden         re-run the fig6b smoke scenario and scenario_diff it
#                  against the committed golden/fig6b_smoke.json at zero
#                  tolerance (cross-version conformance gate)
#   fault-smoke    scenario_run under an injected crash/stall/corrupt
#                  fault plan, a halt -> resume leg, a forced partial
#                  merge and a process-worker leg, each checked against
#                  the golden archive or the degradation contract
#   anytime-smoke  tabu-budget sweep (planning-pareto): threads {1,8}
#                  bit-identity, cover cost monotone non-increasing in
#                  budget, zero-tolerance diff vs golden/anytime_smoke.json
#   service-smoke  groupingd event-log replay: JSONL serve transcript
#                  diffed against golden/service_smoke.json at zero
#                  tolerance, a snapshot -> restore -> continue leg that
#                  must reproduce the transcript tail, and a --threads 8
#                  bit-identity leg
#   weighted-smoke airtime-weighted cover: reduced weighted-airtime point
#                  at threads {1,8} (bit-identity), then zero-tolerance
#                  diff against golden/weighted_smoke.json
#   bench-gate     bench_report --compare against BENCH_baseline.json
#   massive-smoke  scale tier: reduced 10^5-device massive-n point diffed
#                  against golden/massive_smoke.json at zero tolerance
#                  (summary-level only; the archive guard is exercised
#                  too), plus the bench_report massive stages
#
# Extra stages outside the per-PR matrix (dispatch with --stage):
#   nightly        full paper-suite scenario diffed summary-level against
#                  golden/paper_suite.json at zero tolerance (the
#                  schedule-triggered workflow job)
#   base-diff      rebuild the fig6b smoke archive on the PR head AND on
#                  the merge-base revision, scenario_diff --json between
#                  them into $CI_ARTIFACT_DIR; metric drift is
#                  report-only, only structural mismatch fails
#
# Artifacts (merged smoke archive, bench report) land in $CI_ARTIFACT_DIR
# when set (the workflow uploads them), otherwise in a temp directory.
set -euo pipefail
cd "$(dirname "$0")"

STAGES=(build test lint fmt docs figures-smoke shard-smoke golden fault-smoke anytime-smoke service-smoke weighted-smoke bench-gate massive-smoke)

ARTIFACT_DIR="${CI_ARTIFACT_DIR:-}"
if [[ -z "$ARTIFACT_DIR" ]]; then
    ARTIFACT_DIR="$(mktemp -d /tmp/nbiot_ci.XXXXXX)"
fi
mkdir -p "$ARTIFACT_DIR"

SCRATCH="$(mktemp -d /tmp/nbiot_ci_scratch.XXXXXX)"
trap 'rm -rf "$SCRATCH"' EXIT

run_figures() {
    cargo run --release -q -p nbiot-bench --bin figures -- "$@"
}

stage_build() {
    echo "==> cargo build --release --workspace"
    cargo build --release --workspace
}

stage_test() {
    echo "==> cargo test -q (tier-1: root crate)"
    cargo test -q
    echo "==> cargo test --workspace -q"
    cargo test --workspace -q
}

stage_lint() {
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_fmt() {
    echo "==> cargo fmt --all --check"
    cargo fmt --all --check
}

stage_docs() {
    echo "==> cargo doc --no-deps (offline, warnings denied)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
    echo "==> README quick-start commands vs --help"
    # The README's fenced sh blocks are the quick-start contract: every
    # long flag they pass to an nbiot-bench binary must be documented by
    # that binary's --help, and every pipeline stage must be mentioned in
    # the README. Backslash continuations are joined and the shard
    # example's "${figures[@]}" alias expanded first.
    local cmds="$SCRATCH/readme_cmds" fail=0
    awk '/^```sh$/{f=1;next} /^```$/{f=0} f' README.md \
        | sed -e ':a' -e '/\\$/{N;s/\\\n//;ba}' \
        | sed 's/"\${figures\[@\]}"/cargo run --release -q -p nbiot-bench --bin figures --/' \
        > "$cmds"
    local bin help flags flag
    for bin in figures fig6a fig6b fig7 all_figures ablations calibrate \
               bench_report scenario_merge scenario_diff scenario_run groupingd; do
        grep -Eq -- "--bin $bin( |\$)" "$cmds" || continue
        help="$(cargo run --release -q -p nbiot-bench --bin "$bin" -- --help 2>&1 || true)"
        # A binary may appear with no flags at all (grep then exits 1
        # under pipefail, which is not a failure here).
        flags="$(sed -n "s/.*--bin $bin *-- //p" "$cmds" | { grep -o -- '--[a-z][a-z-]*' || true; } | sort -u)"
        for flag in $flags; do
            if ! grep -q -- "$flag" <<< "$help"; then
                echo "README uses \`$flag\` with \`$bin\`, but \`$bin --help\` does not document it" >&2
                fail=1
            fi
        done
    done
    local s
    for s in "${STAGES[@]}"; do
        if ! grep -q "$s" README.md; then
            echo "ci.sh stage \`$s\` is not mentioned in README.md" >&2
            fail=1
        fi
    done
    [[ "$fail" -eq 0 ]]
    echo "docs smoke OK (rustdoc clean, README commands match --help)"
}

stage_figures_smoke() {
    echo "==> figures --scenario smoke (named scenario + TOML file round-trip)"
    local scn="$SCRATCH/figures_smoke.toml"
    run_figures --list > /dev/null
    run_figures --scenario fig6a --dump toml > "$scn"
    # The dumped template must load back and execute with CLI overrides.
    run_figures --scenario "$scn" --runs 2 --devices 30 --threads 2 > /dev/null
    run_figures --scenario bursty-alarm --runs 2 --devices 30 --json > /dev/null
    # The churn family end-to-end, including the dumped-TOML reload path
    # (ChurnModel + RegroupPolicy must survive the TOML subset).
    local churn_scn="$SCRATCH/mobility_churn_smoke.toml"
    run_figures --scenario mobility-churn --dump toml > "$churn_scn"
    run_figures --scenario "$churn_scn" --runs 2 --devices 30 --threads 2 > /dev/null
    run_figures --scenario handover-storm --runs 2 --devices 25 --json > /dev/null
    echo "figures smoke OK"
}

stage_shard_smoke() {
    echo "==> shard smoke: 3-way shard -> merge -> zero-tolerance diff vs unsharded"
    # Same workload either way; any delta at all fails the diff (and CI).
    local args=(--scenario fig6b --runs 3 --devices 40 --threads 2)
    for i in 0 1 2; do
        run_figures "${args[@]}" --shard "$i/3" --emit-archive "$SCRATCH/shard$i.json"
    done
    run_figures "${args[@]}" --emit-archive "$SCRATCH/unsharded.json" > /dev/null
    cargo run --release -q -p nbiot-bench --bin scenario_merge -- \
        --out "$ARTIFACT_DIR/smoke_scenario_archive.json" \
        "$SCRATCH"/shard{0,1,2}.json > /dev/null
    cargo run --release -q -p nbiot-bench --bin scenario_diff -- \
        "$ARTIFACT_DIR/smoke_scenario_archive.json" "$SCRATCH/unsharded.json"
    echo "shard smoke OK (merged archive bit-identical to the unsharded run)"
}

stage_golden() {
    echo "==> golden: fig6b smoke vs committed golden archive (zero tolerance)"
    # The committed golden archive locks the exact numeric output of the
    # fig6b smoke workload. Any change that moves a single bit of any
    # summary — engine, kernels, RNG streams, fold order — fails here
    # until the golden is regenerated deliberately:
    #   cargo run --release -q -p nbiot-bench --bin figures -- \
    #       --scenario fig6b --runs 3 --devices 40 --threads 2 \
    #       --emit-archive golden/fig6b_smoke.json
    local fresh="$SCRATCH/golden_fresh.json"
    run_figures --scenario fig6b --runs 3 --devices 40 --threads 2 \
        --emit-archive "$fresh" > /dev/null
    cargo run --release -q -p nbiot-bench --bin scenario_diff -- \
        golden/fig6b_smoke.json "$fresh"
    echo "golden OK (fresh run bit-identical to golden/fig6b_smoke.json)"
}

stage_fault_smoke() {
    echo "==> fault smoke: supervised scenario_run under injected faults vs golden"
    # The process-worker leg re-invokes the figures binary; build it once
    # up front (cargo run --bin scenario_run alone would not).
    cargo build --release -q -p nbiot-bench
    local run=(cargo run --release -q -p nbiot-bench --bin scenario_run --)
    local diff=(cargo run --release -q -p nbiot-bench --bin scenario_diff --)
    local args=(--scenario fig6b --runs 3 --devices 40 --threads 2)
    local rc

    # Leg 1: every injected fault kind on the golden smoke workload —
    # crash mid-shard, a stall past the timeout, a corrupted checkpoint
    # write and a transient spawn failure. The retries must recover and
    # the merged archive must be bit-identical to the committed golden.
    cat > "$SCRATCH/faults.json" <<'EOF'
{ "rules": [
    { "shard": 0, "attempt": 1, "kind": { "Crash": { "after_items": 1 } } },
    { "shard": 1, "attempt": 1, "kind": "Stall" },
    { "shard": 1, "attempt": 2, "kind": "SpawnFailure" },
    { "shard": 2, "attempt": 1, "kind": "CorruptWrite" }
] }
EOF
    "${run[@]}" "${args[@]}" --shards 3 --run-dir "$SCRATCH/ft_run" \
        --fault-plan "$SCRATCH/faults.json" --timeout-ms 5000 --backoff-ms 0 \
        --out "$ARTIFACT_DIR/fault_smoke_archive.json" > /dev/null
    "${diff[@]}" golden/fig6b_smoke.json "$ARTIFACT_DIR/fault_smoke_archive.json"
    echo "fault smoke leg 1 OK (crash/stall/corrupt/spawn-failure plan recovered)"

    # Leg 2: kill after one completed shard (exit 4), resume from the
    # same run directory, and still land on the golden bit pattern.
    rc=0
    "${run[@]}" "${args[@]}" --shards 3 --run-dir "$SCRATCH/halt_run" \
        --halt-after 1 > /dev/null || rc=$?
    [[ "$rc" -eq 4 ]] || { echo "expected halt exit 4, got $rc" >&2; return 1; }
    "${run[@]}" "${args[@]}" --shards 3 --run-dir "$SCRATCH/halt_run" \
        --out "$SCRATCH/resumed.json" > /dev/null
    "${diff[@]}" golden/fig6b_smoke.json "$SCRATCH/resumed.json"
    echo "fault smoke leg 2 OK (halt -> resume bit-identical)"

    # Leg 3: a shard that fails every attempt must degrade (exit 3) to a
    # coverage-annotated partial archive naming exactly that shard.
    cat > "$SCRATCH/always_fail.json" <<'EOF'
{ "rules": [
    { "shard": 1, "attempt": 1, "kind": "SpawnFailure" },
    { "shard": 1, "attempt": 2, "kind": "SpawnFailure" },
    { "shard": 1, "attempt": 3, "kind": "SpawnFailure" }
] }
EOF
    rc=0
    "${run[@]}" "${args[@]}" --shards 3 --run-dir "$SCRATCH/partial_run" \
        --fault-plan "$SCRATCH/always_fail.json" --backoff-ms 0 \
        --allow-partial > /dev/null || rc=$?
    [[ "$rc" -eq 3 ]] || { echo "expected degraded exit 3, got $rc" >&2; return 1; }
    grep -q '"coverage"' "$SCRATCH/partial_run/partial.json"
    grep -q '"missing"' "$SCRATCH/partial_run/partial.json"
    # ...and the partial archive must refuse to fold into figure tables.
    rc=0
    "${diff[@]}" "$SCRATCH/partial_run/partial.json" \
        "$SCRATCH/partial_run/partial.json" 2> /dev/null || rc=$?
    [[ "$rc" -ne 0 ]] || { echo "partial archive folded; it must refuse" >&2; return 1; }
    echo "fault smoke leg 3 OK (exhausted retries degrade to annotated partial)"

    # Leg 4: process workers — each shard a supervised child re-invoking
    # the figures binary — must also land on the golden bit pattern.
    "${run[@]}" "${args[@]}" --shards 2 --run-dir "$SCRATCH/proc_run" \
        --workers process \
        --figures-bin "${CARGO_TARGET_DIR:-target}/release/figures" \
        --out "$SCRATCH/proc_merged.json" > /dev/null
    "${diff[@]}" golden/fig6b_smoke.json "$SCRATCH/proc_merged.json"
    echo "fault smoke OK (all four legs)"
}

stage_anytime_smoke() {
    echo "==> anytime smoke: tabu budget sweep (monotone cover cost, thread bit-identity, golden)"
    # The committed golden locks the exact archive of the planning-pareto
    # smoke workload (the anytime tabu budget ladder over one DR-SC
    # instance family). Regenerate deliberately with:
    #   cargo run --release -q -p nbiot-bench --bin figures -- \
    #       --scenario planning-pareto --runs 2 --devices 1000 --threads 1 \
    #       --emit-archive golden/anytime_smoke.json
    local args=(--scenario planning-pareto --runs 2 --devices 1000)
    local t1="$SCRATCH/anytime_t1.json" t8="$SCRATCH/anytime_t8.json"
    local report="$SCRATCH/anytime_report.txt"

    # Leg 1: the anytime search is deterministic at every thread count —
    # the budget knob is iterations, never wall-clock.
    run_figures "${args[@]}" --threads 1 --emit-archive "$t1" > "$report"
    run_figures "${args[@]}" --threads 8 --emit-archive "$t8" > /dev/null
    cargo run --release -q -p nbiot-bench --bin scenario_diff -- "$t1" "$t8"
    echo "anytime smoke leg 1 OK (threads 1 and 8 bit-identical)"

    # Leg 2: the anytime contract — mean cover cost is monotone
    # non-increasing as the tabu budget grows (scenario mechanism order
    # is the budget ladder; the budget-0 row is the greedy anchor).
    # Reads the "cover final" column (field 6) of the Pareto table; the
    # transmissions table's tabu rows have fewer fields and are skipped.
    awk '/DR-SC-tabu\(/ && NF == 8 {
             cost = $6 + 0
             if (prev != "" && cost > prev + 1e-9) {
                 printf "cover cost rose with budget: %s -> %s at %s\n", prev, cost, $2 > "/dev/stderr"
                 exit 1
             }
             prev = cost
         }' "$report"
    echo "anytime smoke leg 2 OK (cover cost monotone non-increasing in budget)"

    # Leg 3: zero-tolerance conformance against the committed golden.
    cargo run --release -q -p nbiot-bench --bin scenario_diff -- \
        golden/anytime_smoke.json "$t1"
    echo "anytime smoke OK (fresh sweep bit-identical to golden/anytime_smoke.json)"
}

stage_service_smoke() {
    echo "==> service smoke: groupingd replay vs golden transcript (zero tolerance)"
    # The committed golden locks the exact JSONL serve transcript of the
    # smoke event log (one line per served campaign plus the summary
    # line) under the repair policy. Any change to the service engine,
    # repair kernels, or RNG serve streams fails here until the golden is
    # regenerated deliberately:
    #   cargo run --release -q -p nbiot-bench --bin groupingd -- --synth \
    #       --mix mobility-churn --devices 80 --epochs 6 --mechanism dr-sc \
    #       --seed 42 --emit-events "$SCRATCH/service_events.json"
    #   cargo run --release -q -p nbiot-bench --bin groupingd -- \
    #       --events "$SCRATCH/service_events.json" --policy repair \
    #       --seed 42 > golden/service_smoke.json
    local d=(cargo run --release -q -p nbiot-bench --bin groupingd --)
    local events="$SCRATCH/service_events.json"
    "${d[@]}" --synth --mix mobility-churn --devices 80 --epochs 6 \
        --mechanism dr-sc --seed 42 --emit-events "$events" 2> /dev/null
    "${d[@]}" --events "$events" --policy repair --seed 42 > "$SCRATCH/service_full.jsonl"
    diff -u golden/service_smoke.json "$SCRATCH/service_full.jsonl"
    echo "service smoke leg 1 OK (replay bit-identical to golden/service_smoke.json)"

    # Leg 2: snapshot -> restore -> continue. A checkpoint written ~60%
    # through the log must resume into exactly the tail of the
    # uninterrupted transcript (the replay-equivalence contract).
    local records every
    records="$(grep -c '"epoch"' "$events")"
    every=$(( records * 3 / 5 ))
    "${d[@]}" --events "$events" --policy repair --seed 42 \
        --snapshot-every "$every" --snapshot-out "$SCRATCH/service_snap.json" > /dev/null
    "${d[@]}" --events "$events" --policy repair --seed 42 \
        --restore "$SCRATCH/service_snap.json" > "$SCRATCH/service_resumed.jsonl"
    tail -n "$(wc -l < "$SCRATCH/service_resumed.jsonl")" "$SCRATCH/service_full.jsonl" \
        | diff -u - "$SCRATCH/service_resumed.jsonl"
    echo "service smoke leg 2 OK (restore-midway transcript matches the uninterrupted tail)"

    # Leg 3: the configured thread count never changes the transcript.
    "${d[@]}" --events "$events" --policy repair --seed 42 --threads 8 \
        > "$SCRATCH/service_t8.jsonl"
    diff -u "$SCRATCH/service_full.jsonl" "$SCRATCH/service_t8.jsonl"
    echo "service smoke OK (all three legs)"
}

stage_nightly() {
    echo "==> nightly: full paper-suite vs committed golden (summary-level, zero tolerance)"
    # The schedule-triggered full-suite gate: the complete paper-suite
    # scenario (every payload, default run count) must reproduce the
    # committed summary bit-for-bit. Summary-level like the massive
    # gate — the raw archive of the full suite is large and adds nothing
    # over the folded summaries. Regenerate deliberately with:
    #   cargo run --release -q -p nbiot-bench --bin figures -- \
    #       --scenario paper-suite --json > golden/paper_suite.json
    local fresh="$SCRATCH/paper_suite_fresh.json"
    run_figures --scenario paper-suite --json > "$fresh"
    diff -u golden/paper_suite.json "$fresh"
    echo "nightly OK (full paper-suite summary bit-identical to golden/paper_suite.json)"
}

stage_base_diff() {
    echo "==> base-vs-PR diff: fig6b smoke archive on PR head vs merge-base"
    local base_ref="${BASE_REF:-origin/main}"
    local base_sha=""
    base_sha="$(git merge-base HEAD "$base_ref" 2>/dev/null || true)"
    if [[ -z "$base_sha" ]]; then
        base_sha="$(git rev-parse HEAD~1 2>/dev/null || true)"
    fi
    if [[ -z "$base_sha" ]]; then
        echo "base-diff skipped (no base revision reachable from HEAD)"
        return 0
    fi
    local args=(--scenario fig6b --runs 3 --devices 40 --threads 2)
    run_figures "${args[@]}" --emit-archive "$SCRATCH/head_archive.json" > /dev/null

    # The base archive is produced by the base revision's own binary, in
    # a detached worktree with its own target dir (the head target cache
    # stays untouched).
    git worktree add --detach "$SCRATCH/base_tree" "$base_sha" > /dev/null 2>&1
    (cd "$SCRATCH/base_tree" && \
        CARGO_TARGET_DIR="$SCRATCH/base_target" \
        cargo run --release -q -p nbiot-bench --bin figures -- \
            "${args[@]}" --emit-archive "$SCRATCH/base_archive.json" > /dev/null)
    git worktree remove --force "$SCRATCH/base_tree" > /dev/null 2>&1 || true

    # A deliberate archive-schema bump makes the two artifacts
    # incomparable by this build's loader; that change is gated by the
    # golden stages, so the cross-revision diff reports and steps aside
    # instead of blocking every schema-migration PR.
    local head_schema base_schema
    head_schema="$(grep -o '"schema_version"[: ]*[0-9]*' "$SCRATCH/head_archive.json" | head -1)"
    base_schema="$(grep -o '"schema_version"[: ]*[0-9]*' "$SCRATCH/base_archive.json" | head -1)"
    local out="$ARTIFACT_DIR/base_vs_pr_diff.json"
    if [[ "$head_schema" != "$base_schema" ]]; then
        printf '{ "skipped": "archive schema changed between base and head (%s vs %s)" }\n' \
            "${base_schema##* }" "${head_schema##* }" > "$out"
        echo "base-diff OK (schema bump ${base_schema##* } -> ${head_schema##* }; diff skipped, see golden stages)"
        return 0
    fi

    # Metric drift between revisions is the artifact's payload
    # (report-only); only a structural mismatch — the candidate no longer
    # measuring what the base measured — fails the job.
    cargo run --release -q -p nbiot-bench --bin scenario_diff -- \
        --json --structural-only \
        "$SCRATCH/base_archive.json" "$SCRATCH/head_archive.json" > "$out"
    echo "base-diff OK (diff artifact at $out; structure matches base $base_sha)"
}

stage_weighted_smoke() {
    echo "==> weighted smoke: airtime-weighted cover vs golden (thread bit-identity, zero tolerance)"
    # The committed golden locks the exact archive of the reduced
    # weighted-airtime point: DR-SC and DR-SC-weighted side by side on the
    # heterogeneous CE0/CE1/CE2 mix, including the `plan_airtime_ms` and
    # `airtime_vs_count_ratio` summaries. Any change to the weighted
    # kernel's ratio key, tie law, or the best-of-two fallback fails here
    # until the golden is regenerated deliberately:
    #   cargo run --release -q -p nbiot-bench --bin figures -- \
    #       --scenario weighted-airtime --runs 2 --devices 60 --threads 1 \
    #       --emit-archive golden/weighted_smoke.json
    local args=(--scenario weighted-airtime --runs 2 --devices 60)
    local t1="$SCRATCH/weighted_t1.json" t8="$SCRATCH/weighted_t8.json"

    # Leg 1: the weighted cover is deterministic at every thread count —
    # the fixed-point ratio key is the tie law, never scheduling order.
    run_figures "${args[@]}" --threads 1 --emit-archive "$t1" > /dev/null
    run_figures "${args[@]}" --threads 8 --emit-archive "$t8" > /dev/null
    cargo run --release -q -p nbiot-bench --bin scenario_diff -- "$t1" "$t8"
    echo "weighted smoke leg 1 OK (threads 1 and 8 bit-identical)"

    # Leg 2: zero-tolerance conformance against the committed golden.
    cargo run --release -q -p nbiot-bench --bin scenario_diff -- \
        golden/weighted_smoke.json "$t1"
    echo "weighted smoke OK (fresh run bit-identical to golden/weighted_smoke.json)"
}

stage_bench_gate() {
    echo "==> bench gate: bench_report --compare vs BENCH_baseline.json"
    # The committed baseline was measured on the *full* default workload.
    # Strict mode therefore measures the full workload too — a gate
    # comparing a tiny smoke run against the full baseline could never
    # flag a regression in the workload-scaled stages. The default
    # (non-strict) mode keeps CI fast with a tiny run and --warn-only:
    # on the 1-core shared container wall-clock ratios are untrustworthy
    # anyway (per ROADMAP), and the fixed-size kernel stages still get a
    # meaningful look. Flip BENCH_GATE_STRICT=1 on dedicated hardware.
    local gate_flags=(--compare BENCH_baseline.json --tolerance-pct "${BENCH_TOLERANCE_PCT:-25}")
    local workload_flags=(--runs 2 --devices 40 --massive-devices 20000)
    if [[ "${BENCH_GATE_STRICT:-0}" == "1" ]]; then
        workload_flags=() # full default workload, matching the baseline
    else
        gate_flags+=(--warn-only)
    fi
    # ${arr[@]+...} keeps the empty strict-mode array safe under `set -u`
    # on bash < 4.4 (macOS ships 3.2).
    cargo run --release -q -p nbiot-bench --bin bench_report -- \
        ${workload_flags[@]+"${workload_flags[@]}"} \
        --out "$ARTIFACT_DIR/BENCH_results.json" \
        "${gate_flags[@]}" > /dev/null
    test -s "$ARTIFACT_DIR/BENCH_results.json"
    echo "bench report written to $ARTIFACT_DIR/BENCH_results.json:"
    grep -A4 '"derived"' "$ARTIFACT_DIR/BENCH_results.json"
}

stage_massive_smoke() {
    echo "==> massive smoke: reduced 10^5-device massive-n point vs golden (zero tolerance)"
    # The committed golden locks the exact summary JSON of the reduced
    # massive-n point (10^5 devices; the full scenario's second point is
    # 10^6 and stays out of CI). Summary-level only by design: a raw
    # archive at this scale is refused by the figures driver, which leg 2
    # checks. Regenerate the golden deliberately with:
    #   cargo run --release -q -p nbiot-bench --bin figures -- \
    #       --scenario massive-n --devices 100000 --runs 1 --threads 2 \
    #       --json > golden/massive_smoke.json
    local fresh="$SCRATCH/massive_fresh.json"
    run_figures --scenario massive-n --devices 100000 --runs 1 --threads 2 \
        --json > "$fresh"
    diff -u golden/massive_smoke.json "$fresh"
    echo "massive smoke leg 1 OK (summary bit-identical to golden/massive_smoke.json)"

    # Leg 2: the archive guard — raw per-run records above the device
    # limit must be refused with a usage error (exit 2), not written.
    local rc=0
    run_figures --scenario massive-n --emit-archive "$SCRATCH/refused.json" \
        2> /dev/null || rc=$?
    [[ "$rc" -eq 2 ]] || { echo "expected archive-guard exit 2, got $rc" >&2; return 1; }
    [[ ! -e "$SCRATCH/refused.json" ]] || { echo "refused archive was written" >&2; return 1; }
    echo "massive smoke leg 2 OK (raw archive above the device limit refused)"

    # Leg 3: the bench_report massive stages at a reduced 10^5 point.
    # Warn-only against the committed baseline: the baseline's massive
    # stages were measured at the full 10^6 default, so only stage
    # presence and completion are hard-gated here (the full comparison is
    # the bench-gate stage's job).
    local report="$ARTIFACT_DIR/massive_bench_results.json"
    cargo run --release -q -p nbiot-bench --bin bench_report -- \
        --runs 2 --devices 40 --massive-devices 100000 \
        --compare BENCH_baseline.json --tolerance-pct "${BENCH_TOLERANCE_PCT:-25}" \
        --warn-only --out "$report" > /dev/null
    local s
    for s in massive_instance_generation index_build_serial index_build_parallel \
             set_cover_massive_incremental set_cover_massive_bitset; do
        grep -q "\"$s" "$report" || { echo "bench report lacks stage $s" >&2; return 1; }
    done
    echo "massive smoke OK (all three legs)"
}

run_stage() {
    case "$1" in
        build)         stage_build ;;
        test)          stage_test ;;
        lint)          stage_lint ;;
        fmt)           stage_fmt ;;
        docs)          stage_docs ;;
        figures-smoke) stage_figures_smoke ;;
        shard-smoke)   stage_shard_smoke ;;
        golden)        stage_golden ;;
        fault-smoke)   stage_fault_smoke ;;
        anytime-smoke) stage_anytime_smoke ;;
        service-smoke) stage_service_smoke ;;
        weighted-smoke) stage_weighted_smoke ;;
        bench-gate)    stage_bench_gate ;;
        massive-smoke) stage_massive_smoke ;;
        nightly)       stage_nightly ;;
        base-diff)     stage_base_diff ;;
        *)
            echo "unknown stage '$1'; stages: ${STAGES[*]}" >&2
            exit 2
            ;;
    esac
}

case "${1:-}" in
    --stage)
        [[ $# -ge 2 ]] || { echo "--stage needs a name; stages: ${STAGES[*]}" >&2; exit 2; }
        run_stage "$2"
        ;;
    --list)
        printf '%s\n' "${STAGES[@]}"
        ;;
    --help|-h)
        sed -n '2,54p' "$0" | sed 's/^# \{0,1\}//'
        ;;
    "")
        for stage in "${STAGES[@]}"; do
            run_stage "$stage"
        done
        echo "==> CI OK"
        ;;
    *)
        echo "unknown argument '$1'; use --stage <name>, --list or no argument" >&2
        exit 2
        ;;
esac
